#include "common/flags.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/strings.h"
#include "common/thread_pool.h"

namespace desalign::common {

namespace {

Status BadValue(const std::string& name, const std::string& value,
                const char* kind) {
  return Status::InvalidArgument("flag --" + name + ": '" + value +
                                 "' is not a valid " + kind);
}

}  // namespace

FlagParser::FlagParser(std::string program_description)
    : description_(std::move(program_description)) {}

void FlagParser::AddString(const std::string& name,
                           const std::string& default_value,
                           const std::string& help, std::string* out) {
  *out = default_value;
  Flag f;
  f.name = name;
  f.help = help;
  f.default_text = default_value;
  f.set = [out](const std::string& v) {
    *out = v;
    return Status::Ok();
  };
  flags_.push_back(std::move(f));
}

void FlagParser::AddInt64(const std::string& name, int64_t default_value,
                          const std::string& help, int64_t* out) {
  *out = default_value;
  Flag f;
  f.name = name;
  f.help = help;
  f.default_text = std::to_string(default_value);
  f.set = [out, name](const std::string& v) {
    char* end = nullptr;
    const long long parsed = std::strtoll(v.c_str(), &end, 10);
    if (end == v.c_str() || *end != '\0') {
      return BadValue(name, v, "integer");
    }
    *out = parsed;
    return Status::Ok();
  };
  flags_.push_back(std::move(f));
}

void FlagParser::AddDouble(const std::string& name, double default_value,
                           const std::string& help, double* out) {
  *out = default_value;
  Flag f;
  f.name = name;
  f.help = help;
  f.default_text = FormatDouble(default_value, 4);
  f.set = [out, name](const std::string& v) {
    char* end = nullptr;
    const double parsed = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0') {
      return BadValue(name, v, "number");
    }
    *out = parsed;
    return Status::Ok();
  };
  flags_.push_back(std::move(f));
}

void FlagParser::AddBool(const std::string& name, bool default_value,
                         const std::string& help, bool* out) {
  *out = default_value;
  Flag f;
  f.name = name;
  f.help = help;
  f.default_text = default_value ? "true" : "false";
  f.is_bool = true;
  f.set = [out, name](const std::string& v) {
    if (v == "true" || v == "1") {
      *out = true;
    } else if (v == "false" || v == "0") {
      *out = false;
    } else {
      return BadValue(name, v, "boolean (true/false)");
    }
    return Status::Ok();
  };
  f.set_true = [out]() {
    *out = true;
    return Status::Ok();
  };
  f.set_false = [out]() {
    *out = false;
    return Status::Ok();
  };
  flags_.push_back(std::move(f));
}

const FlagParser::Flag* FlagParser::Find(const std::string& name) const {
  for (const auto& f : flags_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

Status FlagParser::Parse(int argc, const char* const* argv, int start) {
  positional_.clear();
  for (int i = start; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(Usage().c_str(), stderr);
      return Status::FailedPrecondition("help requested");
    }
    if (!StartsWith(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    std::string value;
    bool has_value = false;
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      value = body.substr(eq + 1);
      body = body.substr(0, eq);
      has_value = true;
    }
    const Flag* flag = Find(body);
    if (flag == nullptr && !has_value && StartsWith(body, "no-")) {
      const Flag* negated = Find(body.substr(3));
      if (negated != nullptr && negated->is_bool) {
        DESALIGN_RETURN_NOT_OK(negated->set_false());
        continue;
      }
    }
    if (flag == nullptr) {
      return Status::InvalidArgument("unknown flag --" + body +
                                     " (try --help)");
    }
    if (!has_value) {
      if (flag->is_bool) {
        DESALIGN_RETURN_NOT_OK(flag->set_true());
        continue;
      }
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag --" + body +
                                       " expects a value");
      }
      value = argv[++i];
    }
    DESALIGN_RETURN_NOT_OK(flag->set(value));
  }
  return Status::Ok();
}

std::string FlagParser::Usage() const {
  std::ostringstream os;
  os << description_ << "\n\nFlags:\n";
  for (const auto& f : flags_) {
    os << "  --" << f.name << "  (default: " << f.default_text << ")\n"
       << "      " << f.help << "\n";
  }
  return os.str();
}

void AddThreadsFlag(FlagParser& parser, int64_t* out) {
  parser.AddInt64("threads", 0,
                  "worker threads for parallel kernels (0 = auto: "
                  "DESALIGN_NUM_THREADS env, else hardware)",
                  out);
}

Status ApplyThreadsFlag(int64_t threads) {
  if (threads < 0) {
    return Status::InvalidArgument("--threads must be >= 0, got " +
                                   std::to_string(threads));
  }
  ThreadPool::SetGlobalThreadCount(static_cast<int>(threads));
  return Status::Ok();
}

Result<std::vector<double>> ParseDoubleList(const std::string& text) {
  std::vector<double> out;
  for (const auto& part : Split(text, ',')) {
    const auto trimmed = std::string(Trim(part));
    if (trimmed.empty()) continue;
    char* end = nullptr;
    const double v = std::strtod(trimmed.c_str(), &end);
    if (end == trimmed.c_str() || *end != '\0') {
      return Status::InvalidArgument("'" + trimmed + "' is not a number");
    }
    out.push_back(v);
  }
  return out;
}

std::vector<std::string> ParseStringList(const std::string& text) {
  std::vector<std::string> out;
  for (const auto& part : Split(text, ',')) {
    auto trimmed = std::string(Trim(part));
    if (!trimmed.empty()) out.push_back(std::move(trimmed));
  }
  return out;
}

}  // namespace desalign::common
