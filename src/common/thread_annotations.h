#ifndef DESALIGN_COMMON_THREAD_ANNOTATIONS_H_
#define DESALIGN_COMMON_THREAD_ANNOTATIONS_H_

// Clang thread-safety-analysis attribute macros (no-ops on GCC/MSVC).
//
// These drive `-Wthread-safety`, which proves lock discipline at compile
// time: every field tagged GUARDED_BY(mu) may only be touched while `mu`
// is held, every function tagged REQUIRES(mu) may only be called with `mu`
// held, and ACQUIRE/RELEASE-tagged functions must leave the capability in
// the promised state on every path. The analysis is attribute-driven, so
// it only sees locks whose types carry CAPABILITY annotations — use
// common::Mutex / common::MutexLock (common/mutex.h), not bare std::mutex,
// anywhere a field needs a GUARDED_BY. See docs/STATIC_ANALYSIS.md for
// the full contract, the CI gate, and the remove-one-annotation self-test.
//
// Naming follows the upstream Clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) so the macros
// read the same here as in Abseil/Chromium-style codebases.

#if defined(__clang__) && (!defined(SWIG))
#define DESALIGN_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define DESALIGN_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

#ifndef CAPABILITY
#define CAPABILITY(x) DESALIGN_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))
#endif

#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY DESALIGN_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)
#endif

#ifndef GUARDED_BY
#define GUARDED_BY(x) DESALIGN_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))
#endif

#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) DESALIGN_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))
#endif

#ifndef ACQUIRED_BEFORE
#define ACQUIRED_BEFORE(...) \
  DESALIGN_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#endif

#ifndef ACQUIRED_AFTER
#define ACQUIRED_AFTER(...) \
  DESALIGN_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))
#endif

#ifndef REQUIRES
#define REQUIRES(...) \
  DESALIGN_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#endif

#ifndef REQUIRES_SHARED
#define REQUIRES_SHARED(...) \
  DESALIGN_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))
#endif

#ifndef ACQUIRE
#define ACQUIRE(...) \
  DESALIGN_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#endif

#ifndef ACQUIRE_SHARED
#define ACQUIRE_SHARED(...) \
  DESALIGN_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))
#endif

#ifndef RELEASE
#define RELEASE(...) \
  DESALIGN_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#endif

#ifndef RELEASE_SHARED
#define RELEASE_SHARED(...) \
  DESALIGN_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))
#endif

#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) \
  DESALIGN_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))
#endif

#ifndef EXCLUDES
#define EXCLUDES(...) \
  DESALIGN_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))
#endif

#ifndef ASSERT_CAPABILITY
#define ASSERT_CAPABILITY(x) \
  DESALIGN_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))
#endif

#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) \
  DESALIGN_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))
#endif

#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS \
  DESALIGN_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)
#endif

#endif  // DESALIGN_COMMON_THREAD_ANNOTATIONS_H_
