#include "common/clock.h"

#include <algorithm>
#include <thread>

namespace desalign::common {

namespace {

/// The one audited wall-of-real-time implementation: steady_clock (the
/// sanctioned monotonic timer — never system_clock) behind the virtual
/// Clock seam, so everything above it stays replayable under ManualClock.
class RealClock final : public Clock {
 public:
  TimePoint Now() const override { return std::chrono::steady_clock::now(); }

  std::cv_status WaitUntil(CondVar& cv, Mutex& /*mu*/, MutexLock& lock,
                           TimePoint deadline) override {
    return cv.WaitUntil(lock, deadline);
  }

  void SleepFor(Duration d) override {
    if (d > Duration::zero()) std::this_thread::sleep_for(d);
  }
};

}  // namespace

Clock* Clock::Real() {
  static RealClock& clock = *new RealClock;  // leaked: process lifetime
  return &clock;
}

Clock::TimePoint ManualClock::Now() const {
  MutexLock lock(mutex_);
  return now_;
}

std::cv_status ManualClock::WaitUntil(CondVar& cv, Mutex& mu, MutexLock& lock,
                                      TimePoint deadline) {
  {
    MutexLock clock_lock(mutex_);
    if (now_ >= deadline) return std::cv_status::timeout;
    waiters_.push_back({&cv, &mu});
  }
  // Registered before parking: a concurrent Advance* now either sees this
  // waiter (and wakes it through the mutex handshake in WakeWaiters) or
  // ran before the registration, in which case the deadline check above
  // already observed the advanced time.
  wait_calls_.fetch_add(1, std::memory_order_relaxed);
  cv.Wait(lock);
  MutexLock clock_lock(mutex_);
  for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
    if (it->cv == &cv && it->mu == &mu) {
      waiters_.erase(it);
      break;
    }
  }
  return now_ >= deadline ? std::cv_status::timeout
                          : std::cv_status::no_timeout;
}

void ManualClock::SleepFor(Duration d) {
  sleep_calls_.fetch_add(1, std::memory_order_relaxed);
  if (d > Duration::zero()) AdvanceBy(d);
}

void ManualClock::AdvanceBy(Duration d) {
  std::vector<Waiter> to_wake;
  {
    MutexLock lock(mutex_);
    now_ += d;
    to_wake = waiters_;
  }
  WakeWaiters(std::move(to_wake));
}

void ManualClock::AdvanceTo(TimePoint t) {
  std::vector<Waiter> to_wake;
  {
    MutexLock lock(mutex_);
    now_ = std::max(now_, t);
    to_wake = waiters_;
  }
  WakeWaiters(std::move(to_wake));
}

void ManualClock::WakeWaiters(std::vector<Waiter> waiters) {
  for (const Waiter& w : waiters) {
    // Handshake on the waiter's own mutex: a registered waiter holds it
    // from its deadline check until cv.Wait atomically releases it, so by
    // the time Lock() returns the waiter is parked (or already gone) and
    // the notification cannot fall into the register-to-wait window.
    w.mu->Lock();
    w.mu->Unlock();
    w.cv->NotifyAll();
  }
}

}  // namespace desalign::common
