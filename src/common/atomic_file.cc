#include "common/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/fault_injection.h"

namespace desalign::common {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::IoError(what + " " + path + ": " + std::strerror(errno));
}

// Fsync the directory holding `path` so the rename itself is durable.
// Best-effort: some filesystems refuse O_RDONLY directory fds.
void SyncParentDir(const std::string& path) {
  const std::string dir =
      std::filesystem::path(path).parent_path().string();
  const int fd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

Status AtomicWriteFile(const std::string& path, const std::string& bytes,
                       const std::string& fault_site) {
  FaultInjector& faults = FaultInjector::Global();
  const std::string tmp = path + ".tmp";

  if (faults.OnSite(fault_site + ".open")) {
    return Status::IoError("injected open failure for " + tmp);
  }
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("cannot create", tmp);

  std::string staged;  // only allocated when a fault mutates the payload
  const char* data = bytes.data();
  size_t size = bytes.size();
  bool injected_torn_write = false;
  if (const FaultAction act = faults.OnSite(fault_site + ".data")) {
    switch (act.kind) {
      case FaultKind::kFail:
        ::close(fd);
        ::unlink(tmp.c_str());
        return Status::IoError("injected write failure for " + tmp);
      case FaultKind::kShortWrite:
        size = std::min(size, static_cast<size_t>(act.param));
        injected_torn_write = true;  // still publish: a torn final file
        break;
      case FaultKind::kBitFlip:
        staged = bytes;
        if (!staged.empty()) {
          staged[static_cast<size_t>(act.param) % staged.size()] ^= 1;
        }
        data = staged.data();
        break;
      default:
        break;
    }
  }

  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Errno("short write to", tmp);
    }
    written += static_cast<size_t>(n);
  }
  if (!injected_torn_write && ::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Errno("fsync failed for", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Errno("close failed for", tmp);
  }

  if (faults.OnSite(fault_site + ".rename")) {
    ::unlink(tmp.c_str());
    return Status::IoError("injected rename failure for " + path);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Errno("cannot publish", path);
  }
  SyncParentDir(path);
  return Status::Ok();
}

Status ReadFileToString(const std::string& path, std::string* out,
                        const std::string& fault_site) {
  const FaultAction act = FaultInjector::Global().OnSite(fault_site);
  if (act.kind == FaultKind::kFail) {
    return Status::IoError("injected read failure for " + path);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return Status::IoError("read error on " + path);
  }
  if (act.kind == FaultKind::kBitFlip && !bytes.empty()) {
    bytes[static_cast<size_t>(act.param) % bytes.size()] ^= 1;
  }
  *out = std::move(bytes);
  return Status::Ok();
}

}  // namespace desalign::common
