#include "common/fault_injection.h"

#include <cstdio>
#include <cstdlib>

#include "common/strings.h"

namespace desalign::common {

namespace {

Result<FaultKind> ParseKind(std::string_view text) {
  if (text == "fail") return FaultKind::kFail;
  if (text == "short") return FaultKind::kShortWrite;
  if (text == "bitflip") return FaultKind::kBitFlip;
  if (text == "nan") return FaultKind::kNan;
  if (text == "stop") return FaultKind::kStop;
  if (text == "delay") return FaultKind::kDelay;
  return Status::InvalidArgument("unknown fault action '" +
                                 std::string(text) + "'");
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = [] {
    auto* inj = new FaultInjector();
    inj->ConfigureFromEnv();
    return inj;
  }();
  return *injector;
}

Result<FaultInjector::Rule> FaultInjector::ParseRule(const std::string& text) {
  Rule rule;
  std::string body = text;
  // Trailing '@hit' selector.
  if (const auto at = body.rfind('@'); at != std::string::npos) {
    const std::string hit_text(Trim(body.substr(at + 1)));
    body = body.substr(0, at);
    if (hit_text == "*") {
      rule.every = true;
    } else if (!ParseInt64(hit_text, &rule.hit) || rule.hit < 1) {
      return Status::InvalidArgument("fault rule '" + text +
                                     "' has a bad @hit selector");
    }
  }
  auto fields = Split(body, ':');
  if (fields.size() < 2 || fields.size() > 3) {
    return Status::InvalidArgument(
        "fault rule '" + text + "' is not site:action[:param][@hit]");
  }
  rule.site = std::string(Trim(fields[0]));
  if (rule.site.empty()) {
    return Status::InvalidArgument("fault rule '" + text +
                                   "' has an empty site");
  }
  DESALIGN_ASSIGN_OR_RETURN(rule.kind, ParseKind(Trim(fields[1])));
  if (fields.size() == 3 &&
      (!ParseInt64(Trim(fields[2]), &rule.param) || rule.param < 0)) {
    return Status::InvalidArgument("fault rule '" + text +
                                   "' has a bad param");
  }
  return rule;
}

Status FaultInjector::Configure(const std::string& spec) {
  std::vector<Rule> rules;
  for (const auto& entry : Split(spec, ';')) {
    if (Trim(entry).empty()) continue;
    DESALIGN_ASSIGN_OR_RETURN(Rule rule, ParseRule(std::string(Trim(entry))));
    rules.push_back(std::move(rule));
  }
  MutexLock lock(mutex_);
  rules_ = std::move(rules);
  hits_.clear();
  fires_ = 0;
  armed_.store(!rules_.empty(), std::memory_order_relaxed);
  return Status::Ok();
}

void FaultInjector::ConfigureFromEnv() {
  const char* env = std::getenv("DESALIGN_FAULTS");
  if (env == nullptr) return;
  const Status status = Configure(env);
  if (!status.ok()) {
    std::fprintf(stderr, "DESALIGN_FAULTS: %s\n", status.ToString().c_str());
    std::abort();
  }
}

void FaultInjector::Clear() {
  MutexLock lock(mutex_);
  rules_.clear();
  hits_.clear();
  fires_ = 0;
  armed_.store(false, std::memory_order_relaxed);
}

FaultAction FaultInjector::OnSite(const std::string& site) {
  if (!armed()) return {};
  MutexLock lock(mutex_);
  const int64_t hit = ++hits_[site];
  for (const auto& rule : rules_) {
    if (rule.site != site) continue;
    if (rule.every || rule.hit == hit) {
      ++fires_;
      return {rule.kind, rule.param};
    }
  }
  return {};
}

int64_t FaultInjector::fire_count() const {
  MutexLock lock(mutex_);
  return fires_;
}

}  // namespace desalign::common
