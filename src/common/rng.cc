#include "common/rng.h"

#include <numeric>
#include <sstream>

#include "common/check.h"

namespace desalign::common {

std::string Rng::SerializeState() const {
  std::ostringstream out;
  out << engine_;
  return out.str();
}

bool Rng::DeserializeState(const std::string& state) {
  std::istringstream in(state);
  std::mt19937_64 restored{kDefaultSeed};
  in >> restored;
  if (in.fail()) return false;
  engine_ = restored;
  unit_.reset();
  normal_.reset();
  return true;
}

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  DESALIGN_CHECK_LE(k, n);
  DESALIGN_CHECK_GE(k, 0);
  // Partial Fisher-Yates over an index array; O(n) memory, O(n + k) time.
  std::vector<int64_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  for (int64_t i = 0; i < k; ++i) {
    std::swap(idx[i], idx[i + UniformInt(n - i)]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace desalign::common
