#include "common/table.h"

#include <algorithm>

#include "common/strings.h"

namespace desalign::common {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddSeparator() { rows_.emplace_back(); }

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_sep = [&]() {
    os << '+';
    for (size_t c = 0; c < widths.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << '+';
    }
    os << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : "";
      os << ' ' << cell << std::string(widths[c] - cell.size() + 1, ' ')
         << '|';
    }
    os << '\n';
  };
  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) {
    if (row.empty()) {
      print_sep();
    } else {
      print_row(row);
    }
  }
  print_sep();
}

std::string Pct(double fraction) {
  return common::FormatDouble(fraction * 100.0, 1);
}

std::string Secs(double seconds) {
  return common::FormatDouble(seconds, 2) + "s";
}

}  // namespace desalign::common
