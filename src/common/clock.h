#ifndef DESALIGN_COMMON_CLOCK_H_
#define DESALIGN_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace desalign::common {

/// Injectable monotonic time source for every serving-side deadline and
/// timeout decision. Library code never reads std::chrono clocks directly
/// for control flow: it asks a Clock, so tests swap in a ManualClock and
/// assert deadline behavior deterministically, without sleeps. The single
/// audited real implementation (Clock::Real(), steady_clock) is the only
/// place serving control flow touches a hardware timer — the wall-clock
/// lint's sanctioned pattern (see tests/lint/fixtures/src/common/).
///
/// The time domain is steady_clock's time_point/duration types, but a
/// ManualClock's epoch is its own: never mix time points across clock
/// instances.
class Clock {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;
  using Duration = std::chrono::steady_clock::duration;

  virtual ~Clock() = default;

  virtual TimePoint Now() const = 0;

  /// Waits on `cv` (paired with `mu`, which `lock` must currently hold)
  /// until notified or this clock reaches `deadline`. Returns timeout iff
  /// Now() >= deadline at wake-up; spurious wakeups surface as
  /// no_timeout, so callers keep the standard predicate loop.
  virtual std::cv_status WaitUntil(CondVar& cv, Mutex& mu, MutexLock& lock,
                                   TimePoint deadline) = 0;

  /// Blocks the calling thread for `d` of this clock's time. The real
  /// clock sleeps; a ManualClock advances itself instead, so
  /// fault-injected delays (DESALIGN_FAULTS `delay` actions) expire
  /// deadlines deterministically in tests.
  virtual void SleepFor(Duration d) = 0;

  /// Milliseconds between `start` and this clock's now — the shared
  /// latency measurement helper.
  double MillisSince(TimePoint start) const {
    return std::chrono::duration<double, std::milli>(Now() - start).count();
  }

  static Duration FromMillis(double ms) {
    return std::chrono::duration_cast<Duration>(
        std::chrono::duration<double, std::milli>(ms));
  }

  /// Process-wide steady-clock instance: the audited real implementation.
  static Clock* Real();
};

/// Deterministic test clock. Time only moves when a test calls AdvanceBy/
/// AdvanceTo (or a SleepFor fires, e.g. an injected delay fault). WaitUntil
/// parks waiters on their own condition variable and Advance* wakes every
/// parked waiter through a mutex handshake, so a wakeup can never be lost
/// between a waiter's deadline check and its wait — the property that makes
/// batching-window and deadline tests sleep-free and race-free.
///
/// Waiters must outlive any concurrent Advance* call (in practice: keep
/// the BatchQueue alive while the test advances its clock).
class ManualClock final : public Clock {
 public:
  explicit ManualClock(TimePoint start = TimePoint{}) : now_(start) {}

  TimePoint Now() const override;
  std::cv_status WaitUntil(CondVar& cv, Mutex& mu, MutexLock& lock,
                           TimePoint deadline) override;
  /// Advances the clock; never blocks the caller.
  void SleepFor(Duration d) override;

  void AdvanceBy(Duration d);
  void AdvanceTo(TimePoint t);

  /// Total WaitUntil calls that actually parked (registered as waiters).
  /// Tests spin on this to know a worker is holding a partial batch before
  /// advancing time past its window.
  int64_t wait_calls() const {
    return wait_calls_.load(std::memory_order_relaxed);
  }

  /// Total SleepFor calls (each advances the clock) — how often injected
  /// delay faults fired through this clock.
  int64_t sleep_calls() const {
    return sleep_calls_.load(std::memory_order_relaxed);
  }

 private:
  struct Waiter {
    CondVar* cv = nullptr;
    Mutex* mu = nullptr;
  };

  void WakeWaiters(std::vector<Waiter> waiters);

  mutable Mutex mutex_;
  TimePoint now_ GUARDED_BY(mutex_);
  std::vector<Waiter> waiters_ GUARDED_BY(mutex_);
  std::atomic<int64_t> wait_calls_{0};
  std::atomic<int64_t> sleep_calls_{0};
};

}  // namespace desalign::common

#endif  // DESALIGN_COMMON_CLOCK_H_
