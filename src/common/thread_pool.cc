#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <memory>

namespace desalign::common {

namespace {

int ResolveThreadCount() {
  const char* env = std::getenv("DESALIGN_NUM_THREADS");
  if (env != nullptr && env[0] != '\0') {
    const int parsed = std::atoi(env);
    if (parsed >= 1) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::min(8u, std::max(1u, hw)));
}

// The global pool is guarded so --threads can rebuild it at startup; the
// slot (a heap unique_ptr that is itself never destroyed) is intentionally
// leaked at exit to dodge static-destruction-order issues.
Mutex& GlobalPoolMutex() {
  static Mutex& m = *new Mutex;
  return m;
}

std::unique_ptr<ThreadPool>& GlobalPoolSlot() {
  static std::unique_ptr<ThreadPool>& pool =
      *new std::unique_ptr<ThreadPool>();
  return pool;
}

}  // namespace

ThreadPool& ThreadPool::Global() {
  MutexLock lock(GlobalPoolMutex());
  std::unique_ptr<ThreadPool>& pool = GlobalPoolSlot();
  if (pool == nullptr) pool = std::make_unique<ThreadPool>(ResolveThreadCount());
  return *pool;
}

void ThreadPool::SetGlobalThreadCount(int num_threads) {
  const int resolved = num_threads >= 1 ? num_threads : ResolveThreadCount();
  MutexLock lock(GlobalPoolMutex());
  std::unique_ptr<ThreadPool>& pool = GlobalPoolSlot();
  if (pool != nullptr && pool->num_threads() == resolved) return;
  pool.reset();  // joins the old workers; no work may be in flight
  pool = std::make_unique<ThreadPool>(resolved);
}

int ThreadPool::DefaultThreadCount() { return ResolveThreadCount(); }

int64_t ThreadPool::GrainForCost(int64_t cost_per_item, int64_t target_ops) {
  return std::max<int64_t>(
      1, target_ops / std::max<int64_t>(1, cost_per_item));
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  // The caller participates in ParallelFor, so spawn one fewer worker.
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutdown_ = true;
  }
  work_ready_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    Task task;
    {
      MutexLock lock(mutex_);
      while (!shutdown_ && queue_.empty()) work_ready_.Wait(lock);
      if (shutdown_ && queue_.empty()) return;
      task = queue_.back();
      queue_.pop_back();
    }
    (*task.fn)(task.begin, task.end);
    {
      MutexLock lock(mutex_);
      --pending_;
    }
    work_done_.NotifyAll();
  }
}

void ThreadPool::ParallelFor(
    int64_t begin, int64_t end,
    const std::function<void(int64_t, int64_t)>& fn, int64_t grain) {
  const int64_t total = end - begin;
  if (total <= 0) return;
  const int64_t max_chunks =
      std::min<int64_t>(num_threads_, (total + grain - 1) / grain);
  if (max_chunks <= 1 || workers_.empty()) {
    fn(begin, end);
    return;
  }
  const int64_t chunk = (total + max_chunks - 1) / max_chunks;
  // Enqueue all but the first chunk; the caller runs chunk 0 itself.
  {
    MutexLock lock(mutex_);
    for (int64_t c = 1; c < max_chunks; ++c) {
      Task task;
      task.fn = &fn;
      task.begin = begin + c * chunk;
      task.end = std::min(end, begin + (c + 1) * chunk);
      if (task.begin >= task.end) continue;
      queue_.push_back(task);
      ++pending_;
    }
  }
  work_ready_.NotifyAll();
  fn(begin, std::min(end, begin + chunk));
  MutexLock lock(mutex_);
  while (pending_ != 0) work_done_.Wait(lock);
}

}  // namespace desalign::common
