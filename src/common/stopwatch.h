#ifndef DESALIGN_COMMON_STOPWATCH_H_
#define DESALIGN_COMMON_STOPWATCH_H_

#include <chrono>

namespace desalign::common {

/// Monotonic wall-clock stopwatch used by the efficiency benchmarks.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement window.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction / last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace desalign::common

#endif  // DESALIGN_COMMON_STOPWATCH_H_
