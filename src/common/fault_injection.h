#ifndef DESALIGN_COMMON_FAULT_INJECTION_H_
#define DESALIGN_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace desalign::common {

/// What a fault-injection rule does when it fires at a site.
enum class FaultKind {
  kNone = 0,
  kFail,        ///< the operation reports an IoError
  kShortWrite,  ///< only the first `param` bytes are written (torn write)
  kBitFlip,     ///< bit 0 of byte `param` of the buffer is flipped
  kNan,         ///< a numeric value is replaced by a quiet NaN
  kStop,        ///< the surrounding loop returns early (simulated crash)
  kDelay,       ///< the operation stalls `param` ms on its injected Clock
};

/// Resolved action for one site hit; falsy when no rule fired.
struct FaultAction {
  FaultKind kind = FaultKind::kNone;
  int64_t param = 0;
  explicit operator bool() const { return kind != FaultKind::kNone; }
};

/// Deterministic, env-driven fault injector for crash-safety tests.
///
/// A spec is a semicolon-separated rule list; each rule is
///
///   site ':' action [':' param] ['@' hit]
///
/// where `site` is a dot-separated site name (e.g. `ckpt.write.data`),
/// `action` is one of fail | short | bitflip | nan | stop | delay, `param`
/// is the integer the action needs (bytes kept for `short`, byte offset
/// for `bitflip`, milliseconds stalled on the site's injected Clock for
/// `delay`), and `hit` selects the 1-based occurrence that fires (`@*`
/// fires on every occurrence; the default is `@1`). Examples:
///
///   ckpt.write.data:short:64@2     torn second checkpoint write
///   ckpt.read:bitflip:100          flip a bit in the first read
///   train.loss:nan@3;train.loss:nan@4   two bad training steps
///   serve.batch.retrieve:delay:50@*     every retrieval runs 50 ms slow
///
/// Instrumented call sites ask `OnSite(name)` once per operation; each call
/// advances that site's hit counter, so firing is a pure function of the
/// spec and the call sequence — no clocks, no randomness. The process-wide
/// injector is configured from the `DESALIGN_FAULTS` environment variable
/// the first time Global() is reached; tests call Configure()/Clear()
/// directly. When no rules are armed, OnSite is a single relaxed atomic
/// load. See docs/ROBUSTNESS.md.
class FaultInjector {
 public:
  static FaultInjector& Global();

  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Replaces all rules with `spec` (empty spec = disarm) and resets hit
  /// and fire counters. InvalidArgument on syntax errors, in which case
  /// the previous rules are kept.
  Status Configure(const std::string& spec);

  /// Configure(getenv("DESALIGN_FAULTS")); a malformed env spec aborts the
  /// process, since silently ignoring requested faults would void a test.
  void ConfigureFromEnv();

  /// Removes every rule and resets counters.
  void Clear();

  /// Records one hit of `site` and returns the action to apply (falsy for
  /// "proceed normally"). When several rules match the same hit, the first
  /// configured one wins.
  FaultAction OnSite(const std::string& site);

  /// Total number of rule firings since the last Configure/Clear.
  int64_t fire_count() const;

  bool armed() const { return armed_.load(std::memory_order_relaxed); }

 private:
  struct Rule {
    std::string site;
    FaultKind kind = FaultKind::kNone;
    int64_t param = 0;
    int64_t hit = 1;     // 1-based occurrence
    bool every = false;  // fire on all occurrences
  };

  static Result<Rule> ParseRule(const std::string& text);

  mutable Mutex mutex_;
  std::vector<Rule> rules_ GUARDED_BY(mutex_);
  std::map<std::string, int64_t> hits_ GUARDED_BY(mutex_);
  int64_t fires_ GUARDED_BY(mutex_) = 0;
  std::atomic<bool> armed_{false};
};

}  // namespace desalign::common

#endif  // DESALIGN_COMMON_FAULT_INJECTION_H_
