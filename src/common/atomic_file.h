#ifndef DESALIGN_COMMON_ATOMIC_FILE_H_
#define DESALIGN_COMMON_ATOMIC_FILE_H_

#include <string>

#include "common/status.h"

namespace desalign::common {

/// Crash-safe whole-file publish: writes `bytes` to `path + ".tmp"`,
/// fsyncs the file, renames it over `path`, then fsyncs the containing
/// directory. Readers therefore only ever observe the old complete file or
/// the new complete file — a crash at any point never leaves a partially
/// written `path` (the stale .tmp, if any, is overwritten by the next
/// attempt). On failure the temp file is removed and `path` is untouched.
///
/// FaultInjector sites, for crash-safety tests (see docs/ROBUSTNESS.md):
///   <site>.open    fail        — cannot create the temp file
///   <site>.data    fail        — write error before publish
///   <site>.data    short:N     — only N bytes land, yet the rename still
///                                happens (simulates write/rename
///                                reordering on a real crash)
///   <site>.data    bitflip:N   — bit 0 of byte N is corrupted in flight
///   <site>.rename  fail        — crash between write and publish
/// `site` defaults to "atomic_write"; callers pass their own prefix so a
/// spec can target one write path (e.g. "ckpt.write.data:short:64").
Status AtomicWriteFile(const std::string& path, const std::string& bytes,
                       const std::string& fault_site = "atomic_write");

/// Reads the whole of `path` into `*out`. IoError on missing/unreadable
/// files. FaultInjector site `<site>` supports `fail` and `bitflip:N`
/// (corrupts byte N of the returned buffer), so loaders can be tested
/// against transient read errors and media bit rot without touching the
/// on-disk file. `site` defaults to "file.read".
Status ReadFileToString(const std::string& path, std::string* out,
                        const std::string& fault_site = "file.read");

}  // namespace desalign::common

#endif  // DESALIGN_COMMON_ATOMIC_FILE_H_
