#include "kg/mmkg.h"

#include <gtest/gtest.h>

#include "tensor/tensor.h"

namespace desalign::kg {
namespace {

using tensor::Tensor;

Mmkg TinyKg() {
  Mmkg kg;
  kg.name = "tiny";
  kg.num_entities = 4;
  kg.num_relations = 2;
  kg.num_attributes = 3;
  kg.triples = {{0, 0, 1}, {1, 1, 2}, {2, 0, 3}};
  kg.attribute_triples = {{0, 0, 1.0f}, {0, 1, 2.0f}, {3, 2, 1.0f}};
  kg.relation_features.features = Tensor::Create(4, 2);
  kg.relation_features.present = {true, true, true, true};
  kg.text_features.features = Tensor::Create(4, 3);
  kg.text_features.present = {true, false, false, true};
  kg.visual_features.features = Tensor::Create(4, 5);
  kg.visual_features.present = {true, true, false, false};
  return kg;
}

TEST(ModalityTest, NamesAndOrder) {
  EXPECT_STREQ(ModalityName(Modality::kGraph), "g");
  EXPECT_STREQ(ModalityName(Modality::kRelation), "r");
  EXPECT_STREQ(ModalityName(Modality::kText), "t");
  EXPECT_STREQ(ModalityName(Modality::kVisual), "v");
  const auto& all = AllModalities();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0], Modality::kGraph);
  EXPECT_EQ(all[3], Modality::kVisual);
}

TEST(FeatureTableTest, PresentAccounting) {
  auto kg = TinyKg();
  EXPECT_EQ(kg.text_features.PresentCount(), 2);
  EXPECT_DOUBLE_EQ(kg.text_features.PresentRatio(), 0.5);
  EXPECT_EQ(kg.text_features.dim(), 3);
  EXPECT_EQ(kg.text_features.num_entities(), 4);
}

TEST(MmkgTest, BuildGraphFromTriples) {
  auto kg = TinyKg();
  auto g = kg.BuildGraph();
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 3);
}

TEST(MmkgTest, FeaturesForDispatch) {
  auto kg = TinyKg();
  EXPECT_EQ(kg.FeaturesFor(Modality::kGraph), nullptr);
  EXPECT_EQ(kg.FeaturesFor(Modality::kRelation), &kg.relation_features);
  EXPECT_EQ(kg.FeaturesFor(Modality::kText), &kg.text_features);
  EXPECT_EQ(kg.FeaturesFor(Modality::kVisual), &kg.visual_features);
}

TEST(MmkgTest, StatisticsMatchContents) {
  auto kg = TinyKg();
  auto stats = ComputeStatistics(kg);
  EXPECT_EQ(stats.entities, 4);
  EXPECT_EQ(stats.relations, 2);
  EXPECT_EQ(stats.attributes, 3);
  EXPECT_EQ(stats.relation_triples, 3);
  EXPECT_EQ(stats.attribute_triples, 3);
  EXPECT_EQ(stats.images, 2);
}

TEST(AlignedKgPairTest, SeedRatio) {
  AlignedKgPair pair;
  pair.train_pairs = {{0, 0}, {1, 1}};
  pair.test_pairs = {{2, 2}, {3, 3}, {4, 4}, {5, 5}, {6, 6}, {7, 7}};
  EXPECT_DOUBLE_EQ(pair.SeedRatio(), 0.25);
  EXPECT_EQ(pair.TotalPairs(), 8);
}

TEST(AlignedKgPairTest, ResplitChangesRatioKeepsPairs) {
  AlignedKgPair pair;
  for (int64_t i = 0; i < 10; ++i) {
    if (i < 3) {
      pair.train_pairs.push_back({i, i + 100});
    } else {
      pair.test_pairs.push_back({i, i + 100});
    }
  }
  pair.Resplit(0.5, /*seed=*/1);
  EXPECT_EQ(pair.train_pairs.size(), 5u);
  EXPECT_EQ(pair.test_pairs.size(), 5u);
  // The multiset of pairs is preserved and targets stay consistent.
  std::vector<AlignmentPair> all = pair.train_pairs;
  all.insert(all.end(), pair.test_pairs.begin(), pair.test_pairs.end());
  for (const auto& p : all) EXPECT_EQ(p.target, p.source + 100);
  EXPECT_EQ(all.size(), 10u);
}

TEST(AlignedKgPairTest, ResplitDeterministicAndSeedSensitive) {
  auto make = [] {
    AlignedKgPair pair;
    for (int64_t i = 0; i < 20; ++i) pair.test_pairs.push_back({i, i});
    pair.train_pairs.push_back({20, 20});
    return pair;
  };
  auto a = make();
  auto b = make();
  a.Resplit(0.3, 5);
  b.Resplit(0.3, 5);
  EXPECT_EQ(a.train_pairs.size(), b.train_pairs.size());
  for (size_t i = 0; i < a.train_pairs.size(); ++i) {
    EXPECT_EQ(a.train_pairs[i].source, b.train_pairs[i].source);
  }
  auto c = make();
  c.Resplit(0.3, 6);
  bool differs = c.train_pairs.size() != a.train_pairs.size();
  for (size_t i = 0; !differs && i < a.train_pairs.size(); ++i) {
    differs = c.train_pairs[i].source != a.train_pairs[i].source;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace desalign::kg
