#include "kg/presets.h"

#include <gtest/gtest.h>

#include "kg/synthetic.h"

namespace desalign::kg {
namespace {

TEST(PresetsTest, FiveNamedPresets) {
  auto presets = AllPresets();
  ASSERT_EQ(presets.size(), 5u);
  EXPECT_EQ(presets[0].name, "FBDB15K");
  EXPECT_EQ(presets[1].name, "FBYG15K");
  EXPECT_EQ(presets[2].name, "DBP15K-ZH-EN");
  EXPECT_EQ(presets[3].name, "DBP15K-JA-EN");
  EXPECT_EQ(presets[4].name, "DBP15K-FR-EN");
}

TEST(PresetsTest, LookupByName) {
  auto r = PresetByName("FBYG15K");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().name, "FBYG15K");
  auto missing = PresetByName("DBP15K-DE-EN");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), common::StatusCode::kNotFound);
}

TEST(PresetsTest, MonolingualVsBilingualHeterogeneity) {
  auto mono = PresetFbDb15k();
  auto bi = PresetDbp15k(Dbp15kLang::kZhEn);
  // Bilingual data is structurally noisier across the two KGs...
  EXPECT_LT(bi.edge_keep_prob, mono.edge_keep_prob);
  EXPECT_LT(bi.relation_vocab_overlap, mono.relation_vocab_overlap);
  // ...but has stronger visual features (DBP15K scores higher overall).
  EXPECT_LT(bi.visual_noise, mono.visual_noise);
}

TEST(PresetsTest, FbygHasSparsestAttributeSchema) {
  // YAGO15K carries only 7 attribute types in the real data; the analogue
  // must be the sparsest.
  auto fbyg = PresetFbYg15k();
  for (const auto& other : AllPresets()) {
    if (other.name == "FBYG15K") continue;
    EXPECT_LT(fbyg.num_attributes, other.num_attributes);
  }
}

TEST(PresetsTest, SeedRatiosMatchPaperDefaults) {
  EXPECT_DOUBLE_EQ(PresetFbDb15k().seed_ratio, 0.2);
  EXPECT_DOUBLE_EQ(PresetDbp15k(Dbp15kLang::kFrEn).seed_ratio, 0.3);
}

TEST(PresetsTest, EveryPresetGenerates) {
  for (auto spec : AllPresets()) {
    spec.num_entities = 80;  // shrink for test speed
    auto pair = GenerateSyntheticPair(spec);
    EXPECT_EQ(pair.name, spec.name);
    EXPECT_EQ(pair.source.num_entities, 80);
    EXPECT_GT(pair.source.triples.size(), 0u);
    EXPECT_GT(pair.source.attribute_triples.size(), 0u);
  }
}

TEST(PresetsTest, ImageRatiosMirrorTableOne) {
  // FBYG15K: 73.24% of entities have images; DBP15K roughly 67-80%.
  EXPECT_NEAR(PresetFbYg15k().image_ratio, 0.73, 0.02);
  EXPECT_GT(PresetFbDb15k().image_ratio, PresetFbYg15k().image_ratio);
}

}  // namespace
}  // namespace desalign::kg
