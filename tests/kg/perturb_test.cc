#include "kg/perturb.h"

#include <gtest/gtest.h>

#include "kg/synthetic.h"
#include "tensor/tensor.h"

namespace desalign::kg {
namespace {

AlignedKgPair FullData() {
  SyntheticSpec spec;
  spec.num_entities = 300;
  spec.image_ratio = 1.0;
  spec.text_ratio = 1.0;
  spec.seed = 13;
  return GenerateSyntheticPair(spec);
}

TEST(PerturbTest, DropModalityHitsTargetRatio) {
  auto pair = FullData();
  common::Rng rng(1);
  DropModalityFeatures(pair, Modality::kVisual, 0.4, rng);
  EXPECT_NEAR(pair.source.visual_features.PresentRatio(), 0.4, 0.08);
  EXPECT_NEAR(pair.target.visual_features.PresentRatio(), 0.4, 0.08);
}

TEST(PerturbTest, DroppedRowsAreZeroed) {
  auto pair = FullData();
  common::Rng rng(2);
  DropModalityFeatures(pair.source, Modality::kText, 0.5, rng);
  const auto& ft = pair.source.text_features;
  for (int64_t i = 0; i < ft.num_entities(); ++i) {
    if (ft.present[i]) continue;
    for (int64_t j = 0; j < ft.dim(); ++j) {
      EXPECT_EQ(ft.features->At(i, j), 0.0f);
    }
  }
}

TEST(PerturbTest, DropIsMonotoneInKeepRatio) {
  auto pair = FullData();
  common::Rng rng(3);
  DropModalityFeatures(pair.source, Modality::kVisual, 1.0, rng);
  EXPECT_DOUBLE_EQ(pair.source.visual_features.PresentRatio(), 1.0);
  DropModalityFeatures(pair.source, Modality::kVisual, 0.0, rng);
  EXPECT_DOUBLE_EQ(pair.source.visual_features.PresentRatio(), 0.0);
}

TEST(PerturbTest, DropTriplesShrinksEdgeSet) {
  auto pair = FullData();
  const size_t before = pair.source.triples.size();
  common::Rng rng(4);
  DropTriples(pair.source, 0.5, rng);
  const size_t after = pair.source.triples.size();
  EXPECT_LT(after, before);
  EXPECT_NEAR(static_cast<double>(after) / before, 0.5, 0.1);
}

TEST(PerturbTest, AddNoiseTriplesGrowsEdgeSetWithValidIds) {
  auto pair = FullData();
  const size_t before = pair.source.triples.size();
  common::Rng rng(5);
  AddNoiseTriples(pair.source, 100, rng);
  EXPECT_EQ(pair.source.triples.size(), before + 100);
  for (const auto& t : pair.source.triples) {
    EXPECT_GE(t.head, 0);
    EXPECT_LT(t.head, pair.source.num_entities);
    EXPECT_GE(t.relation, 0);
    EXPECT_LT(t.relation, pair.source.num_relations);
    EXPECT_NE(t.head, t.tail);
  }
}

TEST(PerturbTest, FeatureNoisePerturbsOnlyPresentRows) {
  auto pair = FullData();
  common::Rng rng(6);
  DropModalityFeatures(pair.source, Modality::kVisual, 0.5, rng);
  auto before = pair.source.visual_features.features->Detach();
  AddFeatureNoise(pair.source, Modality::kVisual, 0.1, rng);
  const auto& ft = pair.source.visual_features;
  for (int64_t i = 0; i < ft.num_entities(); ++i) {
    bool changed = false;
    for (int64_t j = 0; j < ft.dim(); ++j) {
      if (ft.features->At(i, j) != before->At(i, j)) changed = true;
    }
    EXPECT_EQ(changed, static_cast<bool>(ft.present[i])) << "row " << i;
  }
}

TEST(PerturbTest, GraphModalityIsRejected) {
  auto pair = FullData();
  common::Rng rng(7);
  EXPECT_DEATH(
      DropModalityFeatures(pair.source, Modality::kGraph, 0.5, rng),
      "feature table");
}


TEST(ReconcileFeatureDimsTest, PadsDisjointVocabularies) {
  auto pair = FullData();
  // Simulate a real pair whose attribute schemas differ in width.
  const int64_t n = pair.target.num_entities;
  const int64_t old_dim = 5;
  auto narrow = tensor::Tensor::Create(n, old_dim);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < old_dim; ++j) narrow->At(i, j) = 1.0f + j;
  }
  pair.target.text_features.features = narrow;
  pair.target.num_attributes = old_dim;
  const int64_t src_dim = pair.source.text_features.dim();

  ReconcileFeatureDims(pair);
  EXPECT_EQ(pair.source.text_features.dim(), src_dim + old_dim);
  EXPECT_EQ(pair.target.text_features.dim(), src_dim + old_dim);
  // Target columns shifted past the source block; source zero there.
  EXPECT_FLOAT_EQ(pair.target.text_features.features->At(0, src_dim), 1.0f);
  EXPECT_FLOAT_EQ(pair.source.text_features.features->At(0, src_dim), 0.0f);
  // Relation tables had equal dims (shared vocab) -> untouched.
  EXPECT_EQ(pair.source.relation_features.dim(),
            pair.target.relation_features.dim());
}

TEST(ReconcileFeatureDimsTest, NoopOnSharedVocabulary) {
  auto pair = FullData();
  const int64_t before = pair.source.text_features.dim();
  ReconcileFeatureDims(pair);
  EXPECT_EQ(pair.source.text_features.dim(), before);
}

}  // namespace
}  // namespace desalign::kg
