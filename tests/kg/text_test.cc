#include "kg/text.h"

#include <cmath>

#include <gtest/gtest.h>

namespace desalign::kg {
namespace {

TEST(TokenizeTest, LowercasesAndSplitsOnPunctuation) {
  auto tokens = Tokenize("Elon Reeve Musk, born-1971 (Pretoria)!");
  EXPECT_EQ(tokens, (std::vector<std::string>{"elon", "reeve", "musk",
                                              "born", "1971", "pretoria"}));
}

TEST(TokenizeTest, EmptyAndAllPunctuation) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("—!?., ").empty());
}

TEST(VocabularyTest, CountsAndIds) {
  Vocabulary vocab;
  vocab.AddText("club club national team");
  EXPECT_EQ(vocab.size(), 3);
  const int64_t club = vocab.IdOf("club");
  ASSERT_GE(club, 0);
  EXPECT_EQ(vocab.CountOf(club), 2);
  EXPECT_EQ(vocab.IdOf("missing"), -1);
}

TEST(VocabularyTest, PruneByMinCount) {
  Vocabulary vocab;
  vocab.AddText("a a a b b c");
  vocab.Prune(/*min_count=*/2, /*max_size=*/100);
  EXPECT_EQ(vocab.size(), 2);
  EXPECT_GE(vocab.IdOf("a"), 0);
  EXPECT_GE(vocab.IdOf("b"), 0);
  EXPECT_EQ(vocab.IdOf("c"), -1);
}

TEST(VocabularyTest, PruneByMaxSizeKeepsMostFrequent) {
  Vocabulary vocab;
  vocab.AddText("x x x y y z");
  vocab.Prune(1, /*max_size=*/2);
  EXPECT_EQ(vocab.size(), 2);
  // Descending frequency: x first.
  EXPECT_EQ(vocab.IdOf("x"), 0);
  EXPECT_EQ(vocab.IdOf("y"), 1);
  EXPECT_EQ(vocab.IdOf("z"), -1);
}

TEST(VocabularyTest, PruneTiesBrokenLexicographically) {
  Vocabulary vocab;
  vocab.AddText("beta alpha gamma");
  vocab.Prune(1, 2);
  EXPECT_EQ(vocab.IdOf("alpha"), 0);
  EXPECT_EQ(vocab.IdOf("beta"), 1);
  EXPECT_EQ(vocab.IdOf("gamma"), -1);
}

TEST(BowFeaturesTest, CountsAndPresence) {
  std::vector<std::string> docs = {"red red blue", "", "green"};
  auto bow = BuildBow(docs);
  EXPECT_EQ(bow.features.num_entities(), 3);
  EXPECT_EQ(bow.vocabulary.size(), 3);
  const int64_t red = bow.vocabulary.IdOf("red");
  EXPECT_NEAR(bow.features.features->At(0, red), std::log1p(2.0f), 1e-5);
  EXPECT_TRUE(bow.features.present[0]);
  EXPECT_FALSE(bow.features.present[1]);  // empty document => absent
  EXPECT_TRUE(bow.features.present[2]);
}

TEST(BowFeaturesTest, OutOfVocabularyTokensAreIgnored) {
  Vocabulary vocab;
  vocab.AddText("known");
  auto table = BuildBowFeatures({"known unknown", "unknown"}, vocab);
  EXPECT_TRUE(table.present[0]);
  EXPECT_FALSE(table.present[1]);
  EXPECT_GT(table.features->At(0, 0), 0.0f);
}

TEST(BowFeaturesTest, SharedVocabularyMakesDocsComparable) {
  // The cross-KG use case: build one vocabulary over both KGs' attribute
  // strings, then per-KG features over the shared id space.
  std::vector<std::string> kg1 = {"striker barcelona", "physicist berlin"};
  std::vector<std::string> kg2 = {"forward barcelona", "physicist munich"};
  Vocabulary vocab;
  for (const auto& d : kg1) vocab.AddText(d);
  for (const auto& d : kg2) vocab.AddText(d);
  vocab.Prune(1, 100);
  auto f1 = BuildBowFeatures(kg1, vocab);
  auto f2 = BuildBowFeatures(kg2, vocab);
  // Matching entities share tokens -> positive dot product; mismatched
  // pairs share none.
  auto dot = [&](int64_t i, int64_t j) {
    float acc = 0.0f;
    for (int64_t c = 0; c < vocab.size(); ++c) {
      acc += f1.features->At(i, c) * f2.features->At(j, c);
    }
    return acc;
  };
  EXPECT_GT(dot(0, 0), 0.0f);
  EXPECT_GT(dot(1, 1), 0.0f);
  EXPECT_EQ(dot(0, 1), 0.0f);
}

}  // namespace
}  // namespace desalign::kg
