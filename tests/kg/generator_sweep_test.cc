// Property sweep over the synthetic-generator parameter space: every
// sampled configuration must satisfy the structural invariants the models
// rely on.

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "kg/synthetic.h"

namespace desalign::kg {
namespace {

using SweepParam =
    std::tuple<int64_t /*entities*/, double /*image*/, double /*text*/,
               double /*seeds*/>;

class GeneratorSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(GeneratorSweepTest, InvariantsHold) {
  auto [entities, image_ratio, text_ratio, seed_ratio] = GetParam();
  SyntheticSpec spec;
  spec.num_entities = entities;
  spec.image_ratio = image_ratio;
  spec.text_ratio = text_ratio;
  spec.seed_ratio = seed_ratio;
  spec.seed = 1000 + static_cast<uint64_t>(entities);
  auto pair = GenerateSyntheticPair(spec);

  for (const auto* kg : {&pair.source, &pair.target}) {
    // Entity ids in range everywhere.
    for (const auto& t : kg->triples) {
      ASSERT_GE(t.head, 0);
      ASSERT_LT(t.head, entities);
      ASSERT_GE(t.tail, 0);
      ASSERT_LT(t.tail, entities);
      ASSERT_GE(t.relation, 0);
      ASSERT_LT(t.relation, kg->num_relations);
    }
    for (const auto& a : kg->attribute_triples) {
      ASSERT_GE(a.entity, 0);
      ASSERT_LT(a.entity, entities);
      ASSERT_GE(a.attribute, 0);
      ASSERT_LT(a.attribute, kg->num_attributes);
    }
    // Feature tables sized to the entity set.
    EXPECT_EQ(kg->relation_features.num_entities(), entities);
    EXPECT_EQ(kg->text_features.num_entities(), entities);
    EXPECT_EQ(kg->visual_features.num_entities(), entities);
    // Presence ratios track the spec (loose bound: small samples).
    EXPECT_NEAR(kg->visual_features.PresentRatio(), image_ratio, 0.15);
    EXPECT_NEAR(kg->text_features.PresentRatio(), text_ratio, 0.15);
    // No NaNs in features.
    for (float v : kg->visual_features.features->data()) {
      ASSERT_TRUE(std::isfinite(v));
    }
  }

  // Alignment is a bijection covering every entity.
  std::set<int64_t> sources, targets;
  for (const auto& pairs : {pair.train_pairs, pair.test_pairs}) {
    for (const auto& p : pairs) {
      EXPECT_TRUE(sources.insert(p.source).second);
      EXPECT_TRUE(targets.insert(p.target).second);
    }
  }
  EXPECT_EQ(static_cast<int64_t>(sources.size()), entities);
  EXPECT_EQ(static_cast<int64_t>(targets.size()), entities);
  EXPECT_NEAR(pair.SeedRatio(), seed_ratio, 0.02);

  // Graphs are mostly connected (one dominant component).
  auto stats = graph::ComputeGraphStatistics(pair.source.BuildGraph());
  auto sizes =
      graph::ConnectedComponents(pair.source.BuildGraph()).ComponentSizes();
  const int64_t largest = *std::max_element(sizes.begin(), sizes.end());
  EXPECT_GT(largest, entities / 2);
  EXPECT_GT(stats.average_degree, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Space, GeneratorSweepTest,
    ::testing::Values(
        SweepParam{80, 0.9, 0.9, 0.3}, SweepParam{150, 0.05, 0.9, 0.3},
        SweepParam{150, 0.9, 0.05, 0.3}, SweepParam{150, 0.5, 0.5, 0.01},
        SweepParam{200, 0.3, 0.7, 0.8}, SweepParam{300, 1.0, 1.0, 0.5}));

}  // namespace
}  // namespace desalign::kg
