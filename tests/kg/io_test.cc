#include "kg/io.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "kg/synthetic.h"

namespace desalign::kg {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("desalign_io_test_" + std::to_string(::getpid()));
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::filesystem::path dir_;
};

// Every writer in io.cc is a registered DESALIGN_FAULTS site; an armed
// `fail` rule must surface as a clean IoError from the public API, and
// disarming must restore byte-identical output (proven by the round-trip
// tests below running in the same process).
TEST_F(IoTest, WriteFaultSitesSurfaceAsStatus) {
  SyntheticSpec spec;
  spec.num_entities = 20;
  spec.seed = 11;
  auto pair = GenerateSyntheticPair(spec);

  for (const char* site :
       {"io.write.meta", "io.write.triples", "io.write.pairs",
        "io.write.attrs", "io.write.features"}) {
    ASSERT_TRUE(common::FaultInjector::Global()
                    .Configure(std::string(site) + ":fail")
                    .ok());
    const auto status = SaveDataset(pair, dir_.string());
    EXPECT_FALSE(status.ok()) << "site " << site << " did not fire";
    EXPECT_NE(status.ToString().find(site), std::string::npos)
        << status.ToString();
  }
  common::FaultInjector::Global().Clear();
  EXPECT_TRUE(SaveDataset(pair, dir_.string()).ok());
}

TEST_F(IoTest, RoundTripPreservesDataset) {
  SyntheticSpec spec;
  spec.name = "roundtrip";
  spec.num_entities = 60;
  spec.num_relations = 6;
  spec.num_attributes = 10;
  spec.seed = 5;
  auto original = GenerateSyntheticPair(spec);

  ASSERT_TRUE(SaveDataset(original, dir_.string()).ok());
  auto loaded_result = LoadDataset(dir_.string());
  ASSERT_TRUE(loaded_result.ok()) << loaded_result.status().ToString();
  const auto& loaded = loaded_result.value();

  EXPECT_EQ(loaded.name, original.name);
  EXPECT_EQ(loaded.source.name, original.source.name);
  EXPECT_EQ(loaded.source.num_entities, original.source.num_entities);
  EXPECT_EQ(loaded.source.triples, original.source.triples);
  EXPECT_EQ(loaded.target.triples, original.target.triples);
  EXPECT_EQ(loaded.source.attribute_triples,
            original.source.attribute_triples);
  EXPECT_EQ(loaded.source.visual_features.features->data(),
            original.source.visual_features.features->data());
  EXPECT_EQ(loaded.source.visual_features.present,
            original.source.visual_features.present);
  EXPECT_EQ(loaded.target.text_features.features->data(),
            original.target.text_features.features->data());
  ASSERT_EQ(loaded.train_pairs.size(), original.train_pairs.size());
  for (size_t i = 0; i < loaded.train_pairs.size(); ++i) {
    EXPECT_EQ(loaded.train_pairs[i], original.train_pairs[i]);
  }
  ASSERT_EQ(loaded.test_pairs.size(), original.test_pairs.size());
}

TEST_F(IoTest, LoadMissingDirectoryFails) {
  auto r = LoadDataset((dir_ / "does_not_exist").string());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), common::StatusCode::kIoError);
}

TEST_F(IoTest, SaveCreatesExpectedFiles) {
  SyntheticSpec spec;
  spec.num_entities = 20;
  auto pair = GenerateSyntheticPair(spec);
  ASSERT_TRUE(SaveDataset(pair, dir_.string()).ok());
  for (const char* file :
       {"meta.tsv", "src_triples.tsv", "tgt_triples.tsv",
        "src_attr_triples.tsv", "tgt_attr_triples.tsv", "train_pairs.tsv",
        "test_pairs.tsv", "src_rel.fbin", "src_text.fbin", "src_vis.fbin",
        "tgt_rel.fbin", "tgt_text.fbin", "tgt_vis.fbin"}) {
    EXPECT_TRUE(std::filesystem::exists(dir_ / file)) << file;
  }
}

TEST_F(IoTest, CorruptFeatureFileFails) {
  SyntheticSpec spec;
  spec.num_entities = 20;
  auto pair = GenerateSyntheticPair(spec);
  ASSERT_TRUE(SaveDataset(pair, dir_.string()).ok());
  // Truncate one feature file.
  std::filesystem::resize_file(dir_ / "src_vis.fbin", 8);
  auto r = LoadDataset(dir_.string());
  EXPECT_FALSE(r.ok());
}

TEST_F(IoTest, CorruptTextFixturesFailWithCleanStatus) {
  SyntheticSpec spec;
  spec.num_entities = 20;
  auto pair = GenerateSyntheticPair(spec);

  // Each case appends one malformed line to an otherwise valid file. The
  // loader must return an IoError Status (never throw, never crash) and
  // the message must name the offending file.
  struct Case {
    const char* file;
    const char* bad_line;
  } const kCases[] = {
      {"src_triples.tsv", "1\tx\t2"},        // non-numeric relation
      {"tgt_triples.tsv", "1\t2"},           // wrong field count
      {"src_triples.tsv", "1\t2\t3\t4"},     // wrong field count
      {"src_attr_triples.tsv", "3\t4\tnotafloat"},
      {"tgt_attr_triples.tsv", "3\t4.5\t1"},  // float where id expected
      {"train_pairs.tsv", "5\t6\t7"},
      {"test_pairs.tsv", "abc\t1"},
      {"test_pairs.tsv", "1\t"},  // empty field
  };
  for (const auto& c : kCases) {
    ASSERT_TRUE(SaveDataset(pair, dir_.string()).ok());
    {
      std::ofstream out(dir_ / c.file, std::ios::app);
      out << c.bad_line << '\n';
    }
    auto r = LoadDataset(dir_.string());
    ASSERT_FALSE(r.ok()) << c.file << " + '" << c.bad_line << "'";
    EXPECT_EQ(r.status().code(), common::StatusCode::kIoError)
        << c.file << " + '" << c.bad_line << "'";
    EXPECT_NE(r.status().ToString().find(c.file), std::string::npos)
        << "error should name the file: " << r.status().ToString();
  }
}

TEST_F(IoTest, ImplausibleFeatureHeaderRejectedWithoutAllocating) {
  SyntheticSpec spec;
  spec.num_entities = 20;
  auto pair = GenerateSyntheticPair(spec);
  ASSERT_TRUE(SaveDataset(pair, dir_.string()).ok());
  // A corrupted header claiming an absurd shape must be rejected by the
  // plausibility check, not die attempting a multi-terabyte allocation.
  const int64_t rows = int64_t{1} << 40;
  const int64_t cols = int64_t{1} << 40;
  {
    std::ofstream out(dir_ / "src_text.fbin",
                      std::ios::binary | std::ios::in | std::ios::out);
    out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  }
  auto r = LoadDataset(dir_.string());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), common::StatusCode::kIoError);
}

TEST_F(IoTest, NegativeFeatureHeaderRejected) {
  SyntheticSpec spec;
  spec.num_entities = 20;
  auto pair = GenerateSyntheticPair(spec);
  ASSERT_TRUE(SaveDataset(pair, dir_.string()).ok());
  const int64_t rows = -4;
  const int64_t cols = 8;
  {
    std::ofstream out(dir_ / "tgt_vis.fbin",
                      std::ios::binary | std::ios::in | std::ios::out);
    out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  }
  auto r = LoadDataset(dir_.string());
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace desalign::kg
