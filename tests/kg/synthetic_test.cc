#include "kg/synthetic.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace desalign::kg {
namespace {

SyntheticSpec SmallSpec() {
  SyntheticSpec spec;
  spec.name = "test";
  spec.num_entities = 120;
  spec.num_clusters = 4;
  spec.num_relations = 8;
  spec.num_attributes = 16;
  spec.seed = 99;
  return spec;
}

TEST(SyntheticTest, BasicShape) {
  auto pair = GenerateSyntheticPair(SmallSpec());
  EXPECT_EQ(pair.source.num_entities, 120);
  EXPECT_EQ(pair.target.num_entities, 120);
  EXPECT_GT(pair.source.triples.size(), 100u);
  EXPECT_GT(pair.target.triples.size(), 100u);
  EXPECT_EQ(pair.TotalPairs(), 120);
}

TEST(SyntheticTest, DeterministicInSeed) {
  auto a = GenerateSyntheticPair(SmallSpec());
  auto b = GenerateSyntheticPair(SmallSpec());
  ASSERT_EQ(a.source.triples.size(), b.source.triples.size());
  EXPECT_EQ(a.source.triples, b.source.triples);
  EXPECT_EQ(a.source.visual_features.features->data(),
            b.source.visual_features.features->data());
  ASSERT_EQ(a.train_pairs.size(), b.train_pairs.size());
  for (size_t i = 0; i < a.train_pairs.size(); ++i) {
    EXPECT_EQ(a.train_pairs[i], b.train_pairs[i]);
  }
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  auto spec = SmallSpec();
  auto a = GenerateSyntheticPair(spec);
  spec.seed = 100;
  auto b = GenerateSyntheticPair(spec);
  EXPECT_NE(a.source.triples, b.source.triples);
}

TEST(SyntheticTest, AlignmentIsOneToOnePermutation) {
  auto pair = GenerateSyntheticPair(SmallSpec());
  std::set<int64_t> sources, targets;
  auto check = [&](const std::vector<AlignmentPair>& pairs) {
    for (const auto& p : pairs) {
      EXPECT_TRUE(sources.insert(p.source).second);
      EXPECT_TRUE(targets.insert(p.target).second);
      EXPECT_GE(p.source, 0);
      EXPECT_LT(p.source, 120);
      EXPECT_GE(p.target, 0);
      EXPECT_LT(p.target, 120);
    }
  };
  check(pair.train_pairs);
  check(pair.test_pairs);
  EXPECT_EQ(sources.size(), 120u);
  EXPECT_EQ(targets.size(), 120u);
}

TEST(SyntheticTest, SeedRatioRespected) {
  auto spec = SmallSpec();
  spec.seed_ratio = 0.25;
  auto pair = GenerateSyntheticPair(spec);
  EXPECT_EQ(pair.train_pairs.size(), 30u);
  EXPECT_EQ(pair.test_pairs.size(), 90u);
}

TEST(SyntheticTest, ImageRatioControlsPresence) {
  auto spec = SmallSpec();
  spec.num_entities = 600;
  spec.image_ratio = 0.3;
  auto pair = GenerateSyntheticPair(spec);
  EXPECT_NEAR(pair.source.visual_features.PresentRatio(), 0.3, 0.07);
  EXPECT_NEAR(pair.target.visual_features.PresentRatio(), 0.3, 0.07);
}

TEST(SyntheticTest, TextRatioControlsPresenceAndZeroesRows) {
  auto spec = SmallSpec();
  spec.num_entities = 400;
  spec.text_ratio = 0.5;
  auto pair = GenerateSyntheticPair(spec);
  EXPECT_NEAR(pair.source.text_features.PresentRatio(), 0.5, 0.08);
  const auto& ft = pair.source.text_features;
  for (int64_t i = 0; i < 400; ++i) {
    if (ft.present[i]) continue;
    for (int64_t j = 0; j < ft.dim(); ++j) {
      EXPECT_EQ(ft.features->At(i, j), 0.0f);
    }
  }
}

TEST(SyntheticTest, MissingVisualRowsAreZero) {
  auto spec = SmallSpec();
  spec.image_ratio = 0.5;
  auto pair = GenerateSyntheticPair(spec);
  const auto& vt = pair.source.visual_features;
  for (int64_t i = 0; i < spec.num_entities; ++i) {
    if (vt.present[i]) continue;
    for (int64_t j = 0; j < vt.dim(); ++j) {
      EXPECT_EQ(vt.features->At(i, j), 0.0f);
    }
  }
}

TEST(SyntheticTest, VocabularyOverlapBoundsIds) {
  auto spec = SmallSpec();
  spec.relation_vocab_overlap = 0.5;
  auto pair = GenerateSyntheticPair(spec);
  // Union vocabulary: latent 8 relations, 4 shared => union size 12.
  EXPECT_EQ(pair.source.num_relations, 12);
  EXPECT_EQ(pair.target.num_relations, 12);
  // Source uses only latent ids [0, 8); target never uses [4, 8) ids that
  // are source-private beyond the shared range... source ids < 8.
  for (const auto& t : pair.source.triples) {
    EXPECT_LT(t.relation, 8);
  }
  // Target relation ids are either shared [0,4) or remapped [8,12).
  for (const auto& t : pair.target.triples) {
    EXPECT_TRUE(t.relation < 4 || t.relation >= 8) << t.relation;
    EXPECT_LT(t.relation, 12);
  }
}

TEST(SyntheticTest, AlignedEntitiesHaveCorrelatedVisualFeatures) {
  auto spec = SmallSpec();
  spec.num_entities = 200;
  spec.image_ratio = 1.0;
  spec.visual_noise = 0.1;
  auto pair = GenerateSyntheticPair(spec);
  // Cosine similarity of aligned visual features should beat random pairs
  // on average.
  auto cosine = [&](int64_t i, int64_t j) {
    const auto& fs = *pair.source.visual_features.features;
    const auto& ft = *pair.target.visual_features.features;
    double dot = 0.0;
    double ns = 0.0;
    double nt = 0.0;
    for (int64_t c = 0; c < fs.cols(); ++c) {
      dot += fs.At(i, c) * ft.At(j, c);
      ns += fs.At(i, c) * fs.At(i, c);
      nt += ft.At(j, c) * ft.At(j, c);
    }
    return dot / (std::sqrt(ns) * std::sqrt(nt) + 1e-9);
  };
  double aligned = 0.0;
  double shuffled = 0.0;
  const auto& pairs = pair.test_pairs;
  for (size_t k = 0; k < pairs.size(); ++k) {
    aligned += cosine(pairs[k].source, pairs[k].target);
    shuffled += cosine(pairs[k].source,
                       pairs[(k + 7) % pairs.size()].target);
  }
  EXPECT_GT(aligned / pairs.size(), shuffled / pairs.size() + 0.2);
}

TEST(SyntheticTest, RelationFeaturesReflectIncidentTriples) {
  auto pair = GenerateSyntheticPair(SmallSpec());
  const auto& kg = pair.source;
  // An entity with at least one triple must have a nonzero relation row.
  std::vector<bool> has_triple(kg.num_entities, false);
  for (const auto& t : kg.triples) {
    has_triple[t.head] = true;
    has_triple[t.tail] = true;
  }
  for (int64_t i = 0; i < kg.num_entities; ++i) {
    double row_sum = 0.0;
    for (int64_t j = 0; j < kg.num_relations; ++j) {
      row_sum += kg.relation_features.features->At(i, j);
    }
    if (has_triple[i]) {
      EXPECT_GT(row_sum, 0.0);
      EXPECT_TRUE(kg.relation_features.present[i]);
    } else {
      EXPECT_EQ(row_sum, 0.0);
    }
  }
}

}  // namespace
}  // namespace desalign::kg
