#include "common/atomic_file.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "common/fault_injection.h"

namespace desalign::common {
namespace {

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

// AtomicWriteFile/ReadFileToString route injection through the global
// injector, so the fixture guarantees it is disarmed around every test.
class AtomicFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().Clear();
    path_ = (std::filesystem::temp_directory_path() /
             ("desalign_atomic_" + std::to_string(::getpid()) + ".bin"))
                .string();
  }
  void TearDown() override {
    FaultInjector::Global().Clear();
    std::error_code ec;
    std::filesystem::remove(path_, ec);
    std::filesystem::remove(path_ + ".tmp", ec);
  }
  std::string path_;
};

TEST_F(AtomicFileTest, RoundTrip) {
  const std::string payload("binary\0payload", 14);
  ASSERT_TRUE(AtomicWriteFile(path_, payload).ok());
  std::string read_back;
  ASSERT_TRUE(ReadFileToString(path_, &read_back).ok());
  EXPECT_EQ(read_back, payload);
  EXPECT_FALSE(std::filesystem::exists(path_ + ".tmp"));
}

TEST_F(AtomicFileTest, OverwriteReplacesWholeFile) {
  ASSERT_TRUE(AtomicWriteFile(path_, "a much longer first version").ok());
  ASSERT_TRUE(AtomicWriteFile(path_, "v2").ok());
  EXPECT_EQ(Slurp(path_), "v2");
}

TEST_F(AtomicFileTest, ReadMissingFileFails) {
  std::string out;
  const auto status = ReadFileToString(path_ + ".nope", &out);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST_F(AtomicFileTest, InjectedOpenFailureLeavesTargetIntact) {
  ASSERT_TRUE(AtomicWriteFile(path_, "original").ok());
  ASSERT_TRUE(
      FaultInjector::Global().Configure("atomic_write.open:fail").ok());
  EXPECT_FALSE(AtomicWriteFile(path_, "replacement").ok());
  EXPECT_EQ(Slurp(path_), "original");
}

TEST_F(AtomicFileTest, InjectedWriteFailureLeavesTargetIntact) {
  ASSERT_TRUE(AtomicWriteFile(path_, "original").ok());
  ASSERT_TRUE(
      FaultInjector::Global().Configure("atomic_write.data:fail").ok());
  EXPECT_FALSE(AtomicWriteFile(path_, "replacement").ok());
  EXPECT_EQ(Slurp(path_), "original");
  EXPECT_FALSE(std::filesystem::exists(path_ + ".tmp"));
}

TEST_F(AtomicFileTest, InjectedRenameFailureLeavesTargetIntact) {
  ASSERT_TRUE(AtomicWriteFile(path_, "original").ok());
  ASSERT_TRUE(
      FaultInjector::Global().Configure("atomic_write.rename:fail").ok());
  EXPECT_FALSE(AtomicWriteFile(path_, "replacement").ok());
  EXPECT_EQ(Slurp(path_), "original");
}

TEST_F(AtomicFileTest, InjectedShortWritePublishesTornFile) {
  // short:N models a crash where the rename landed but the data didn't:
  // the call reports success and the reader sees a truncated file.
  ASSERT_TRUE(
      FaultInjector::Global().Configure("atomic_write.data:short:5").ok());
  ASSERT_TRUE(AtomicWriteFile(path_, "twelve bytes").ok());
  EXPECT_EQ(Slurp(path_), "twelv");
}

TEST_F(AtomicFileTest, InjectedBitFlipCorruptsOneByte) {
  ASSERT_TRUE(
      FaultInjector::Global().Configure("atomic_write.data:bitflip:3").ok());
  ASSERT_TRUE(AtomicWriteFile(path_, "abcdefgh").ok());
  const std::string got = Slurp(path_);
  ASSERT_EQ(got.size(), 8u);
  EXPECT_EQ(got[3], 'd' ^ 1);
  EXPECT_EQ(got.substr(0, 3), "abc");
}

TEST_F(AtomicFileTest, InjectedReadFaults) {
  ASSERT_TRUE(AtomicWriteFile(path_, "abcdefgh").ok());
  ASSERT_TRUE(FaultInjector::Global()
                  .Configure("file.read:fail@1;file.read:bitflip:0@2")
                  .ok());
  std::string out;
  EXPECT_FALSE(ReadFileToString(path_, &out).ok());  // transient failure
  ASSERT_TRUE(ReadFileToString(path_, &out).ok());   // then a bit flip
  EXPECT_EQ(out[0], 'a' ^ 1);
  ASSERT_TRUE(ReadFileToString(path_, &out).ok());   // then clean
  EXPECT_EQ(out, "abcdefgh");
  // The on-disk file was never touched by the read-side faults.
  EXPECT_EQ(Slurp(path_), "abcdefgh");
}

}  // namespace
}  // namespace desalign::common
