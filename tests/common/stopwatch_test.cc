#include "common/stopwatch.h"

#include <thread>

#include <gtest/gtest.h>

namespace desalign::common {
namespace {

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double elapsed = watch.ElapsedMillis();
  EXPECT_GE(elapsed, 15.0);
  EXPECT_LT(elapsed, 5000.0);
}

TEST(StopwatchTest, ResetRestartsWindow) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  watch.Reset();
  EXPECT_LT(watch.ElapsedMillis(), 15.0);
}

TEST(StopwatchTest, SecondsAndMillisAgree) {
  Stopwatch watch;
  const double s = watch.ElapsedSeconds();
  const double ms = watch.ElapsedMillis();
  EXPECT_GE(ms, s * 1e3 - 1.0);
}

TEST(StopwatchTest, Monotone) {
  Stopwatch watch;
  double prev = 0.0;
  for (int i = 0; i < 5; ++i) {
    const double now = watch.ElapsedSeconds();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

}  // namespace
}  // namespace desalign::common
