#include "common/strings.h"

#include <gtest/gtest.h>

namespace desalign::common {
namespace {

TEST(StringsTest, SplitBasic) {
  auto parts = Split("a\tb\tc", '\t');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitSingleField) {
  auto parts = Split("alone", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "alone");
}

TEST(StringsTest, JoinInvertsSplit) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, '/'), "x/y/z");
  EXPECT_EQ(Split(Join(parts, '/'), '/'), parts);
}

TEST(StringsTest, JoinEmpty) { EXPECT_EQ(Join({}, ','), ""); }

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim("nospace"), "nospace");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(47.06, 1), "47.1");
  EXPECT_EQ(FormatDouble(-0.5, 0), "-0");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("DBP15K-ZH-EN", "DBP15K"));
  EXPECT_FALSE(StartsWith("FB", "FBDB"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(StringsTest, ParseInt64Valid) {
  int64_t v = -1;
  EXPECT_TRUE(ParseInt64("0", &v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(ParseInt64("-42", &v));
  EXPECT_EQ(v, -42);
  EXPECT_TRUE(ParseInt64("9223372036854775807", &v));
  EXPECT_EQ(v, INT64_MAX);
}

TEST(StringsTest, ParseInt64Invalid) {
  int64_t v = 123;
  for (const char* bad : {"", "abc", "12x", "x12", "1.5", "1 2",
                          "99999999999999999999", "0x10"}) {
    EXPECT_FALSE(ParseInt64(bad, &v)) << "'" << bad << "'";
  }
  EXPECT_EQ(v, 123);  // failures never write the output
}

TEST(StringsTest, ParseFloatValid) {
  float v = -1.0f;
  EXPECT_TRUE(ParseFloat("0.5", &v));
  EXPECT_FLOAT_EQ(v, 0.5f);
  EXPECT_TRUE(ParseFloat("-3e2", &v));
  EXPECT_FLOAT_EQ(v, -300.0f);
  EXPECT_TRUE(ParseFloat("7", &v));
  EXPECT_FLOAT_EQ(v, 7.0f);
}

TEST(StringsTest, ParseFloatInvalid) {
  float v = 9.0f;
  for (const char* bad : {"", "abc", "1.5x", "--1", "1e", "1.0 "}) {
    EXPECT_FALSE(ParseFloat(bad, &v)) << "'" << bad << "'";
  }
  EXPECT_FLOAT_EQ(v, 9.0f);
}

}  // namespace
}  // namespace desalign::common
