#include "common/strings.h"

#include <gtest/gtest.h>

namespace desalign::common {
namespace {

TEST(StringsTest, SplitBasic) {
  auto parts = Split("a\tb\tc", '\t');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitSingleField) {
  auto parts = Split("alone", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "alone");
}

TEST(StringsTest, JoinInvertsSplit) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, '/'), "x/y/z");
  EXPECT_EQ(Split(Join(parts, '/'), '/'), parts);
}

TEST(StringsTest, JoinEmpty) { EXPECT_EQ(Join({}, ','), ""); }

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim("nospace"), "nospace");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(47.06, 1), "47.1");
  EXPECT_EQ(FormatDouble(-0.5, 0), "-0");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("DBP15K-ZH-EN", "DBP15K"));
  EXPECT_FALSE(StartsWith("FB", "FBDB"));
  EXPECT_TRUE(StartsWith("x", ""));
}

}  // namespace
}  // namespace desalign::common
