#include "common/crc32.h"

#include <string>

#include <gtest/gtest.h>

namespace desalign::common {
namespace {

TEST(Crc32Test, KnownVector) {
  // The canonical CRC-32/IEEE check value.
  const std::string text = "123456789";
  EXPECT_EQ(Crc32(text.data(), text.size()), 0xCBF43926u);
}

TEST(Crc32Test, EmptyIsZero) { EXPECT_EQ(Crc32("", 0), 0u); }

TEST(Crc32Test, IncrementalChainingMatchesOneShot) {
  const std::string text = "the quick brown fox jumps over the lazy dog";
  const uint32_t one_shot = Crc32(text.data(), text.size());
  for (size_t split : {size_t{0}, size_t{1}, text.size() / 2, text.size()}) {
    const uint32_t first = Crc32(text.data(), split);
    const uint32_t chained = Crc32(text.data() + split, text.size() - split,
                                   first);
    EXPECT_EQ(chained, one_shot) << "split at " << split;
  }
}

TEST(Crc32Test, SingleBitFlipChangesChecksum) {
  std::string text = "checkpoint payload bytes";
  const uint32_t clean = Crc32(text.data(), text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    std::string corrupt = text;
    corrupt[i] ^= 1;
    EXPECT_NE(Crc32(corrupt.data(), corrupt.size()), clean)
        << "flip at byte " << i;
  }
}

}  // namespace
}  // namespace desalign::common
