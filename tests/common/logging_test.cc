#include "common/logging.h"

#include <gtest/gtest.h>

namespace desalign::common {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, SuppressedMessageDoesNotCrash) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  DESALIGN_LOG(Debug) << "this should be dropped " << 42;
  DESALIGN_LOG(Info) << "and this " << 3.14;
  SetLogLevel(original);
}

TEST(LoggingTest, EmittedMessageDoesNotCrash) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  DESALIGN_LOG(Debug) << "visible debug message";
  SetLogLevel(original);
}

}  // namespace
}  // namespace desalign::common
