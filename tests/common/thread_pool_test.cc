#include <algorithm>
#include <mutex>
#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace desalign::common {
namespace {

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(
      0, 1000,
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      },
      /*grain=*/10);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SmallRangesRunInline) {
  ThreadPool pool(4);
  std::vector<int> hits(8, 0);  // not atomic: must be single-threaded
  pool.ParallelFor(
      0, 8,
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) ++hits[i];
      },
      /*grain=*/1024);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(5, 5, [&](int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, SingleThreadPoolHasNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  int64_t total = 0;
  pool.ParallelFor(0, 100,
                   [&](int64_t begin, int64_t end) { total += end - begin; },
                   /*grain=*/1);
  EXPECT_EQ(total, 100);
}

TEST(ThreadPoolTest, DeterministicPartitioning) {
  // The chunk boundaries depend only on range and thread count, so two
  // runs record identical (begin, end) multisets.
  ThreadPool pool(3);
  auto record = [&pool] {
    std::mutex m;
    std::vector<std::pair<int64_t, int64_t>> chunks;
    pool.ParallelFor(
        0, 999,
        [&](int64_t begin, int64_t end) {
          std::lock_guard<std::mutex> lock(m);
          chunks.emplace_back(begin, end);
        },
        /*grain=*/1);
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  EXPECT_EQ(record(), record());
}

TEST(ThreadPoolTest, ManySequentialDispatches) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(
        0, 64,
        [&](int64_t begin, int64_t end) { total += end - begin; },
        /*grain=*/4);
  }
  EXPECT_EQ(total.load(), 200 * 64);
}

TEST(ThreadPoolTest, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::Global(), &ThreadPool::Global());
  EXPECT_GE(ThreadPool::Global().num_threads(), 1);
}

TEST(ThreadPoolTest, SetGlobalThreadCountResizesAndStillRuns) {
  ThreadPool::SetGlobalThreadCount(3);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 3);
  std::atomic<int64_t> total{0};
  ThreadPool::Global().ParallelFor(
      0, 1000, [&](int64_t b, int64_t e) { total += e - b; }, /*grain=*/8);
  EXPECT_EQ(total.load(), 1000);
  // Resizing to the same count keeps the existing pool alive.
  ThreadPool* before = &ThreadPool::Global();
  ThreadPool::SetGlobalThreadCount(3);
  EXPECT_EQ(before, &ThreadPool::Global());
  // 0 restores the automatic default.
  ThreadPool::SetGlobalThreadCount(0);
  EXPECT_EQ(ThreadPool::Global().num_threads(),
            ThreadPool::DefaultThreadCount());
}

}  // namespace
}  // namespace desalign::common
