#include "common/status.h"

#include <gtest/gtest.h>

namespace desalign::common {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dim");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dim");
}

TEST(StatusTest, AllFactoryCodesRoundTrip) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

Status FailingStep() { return Status::IoError("disk"); }

Status UsesReturnNotOk() {
  DESALIGN_RETURN_NOT_OK(FailingStep());
  return Status::Ok();
}

TEST(StatusMacroTest, ReturnNotOkPropagates) {
  EXPECT_EQ(UsesReturnNotOk().code(), StatusCode::kIoError);
}

Result<int> GiveSeven() { return 7; }

Result<int> UsesAssignOrReturn() {
  DESALIGN_ASSIGN_OR_RETURN(int v, GiveSeven());
  DESALIGN_ASSIGN_OR_RETURN(int w, GiveSeven());
  return v + w;
}

TEST(StatusMacroTest, AssignOrReturnUnwraps) {
  auto r = UsesAssignOrReturn();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 14);
}

}  // namespace
}  // namespace desalign::common
