#include "common/fault_injection.h"

#include <gtest/gtest.h>

namespace desalign::common {
namespace {

TEST(FaultInjectionTest, UnarmedInjectorNeverFires) {
  FaultInjector inj;
  EXPECT_FALSE(inj.armed());
  EXPECT_FALSE(inj.OnSite("ckpt.write.data"));
  EXPECT_EQ(inj.fire_count(), 0);
}

TEST(FaultInjectionTest, DefaultHitIsFirstOccurrence) {
  FaultInjector inj;
  ASSERT_TRUE(inj.Configure("ckpt.read:fail").ok());
  EXPECT_TRUE(inj.armed());
  const auto first = inj.OnSite("ckpt.read");
  EXPECT_EQ(first.kind, FaultKind::kFail);
  EXPECT_FALSE(inj.OnSite("ckpt.read"));  // @1 only
  EXPECT_EQ(inj.fire_count(), 1);
}

TEST(FaultInjectionTest, HitSelectorFiresOnExactOccurrence) {
  FaultInjector inj;
  ASSERT_TRUE(inj.Configure("train.epoch:stop@3").ok());
  EXPECT_FALSE(inj.OnSite("train.epoch"));
  EXPECT_FALSE(inj.OnSite("train.epoch"));
  EXPECT_EQ(inj.OnSite("train.epoch").kind, FaultKind::kStop);
  EXPECT_FALSE(inj.OnSite("train.epoch"));
}

TEST(FaultInjectionTest, StarFiresOnEveryOccurrence) {
  FaultInjector inj;
  ASSERT_TRUE(inj.Configure("train.loss:nan@*").ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(inj.OnSite("train.loss").kind, FaultKind::kNan);
  }
  EXPECT_EQ(inj.fire_count(), 5);
}

TEST(FaultInjectionTest, ParamAndMultipleRules) {
  FaultInjector inj;
  ASSERT_TRUE(
      inj.Configure("a.write:short:64@2; b.write:bitflip:7 ;c.x:fail")
          .ok());
  EXPECT_FALSE(inj.OnSite("a.write"));
  const auto torn = inj.OnSite("a.write");
  EXPECT_EQ(torn.kind, FaultKind::kShortWrite);
  EXPECT_EQ(torn.param, 64);
  const auto flip = inj.OnSite("b.write");
  EXPECT_EQ(flip.kind, FaultKind::kBitFlip);
  EXPECT_EQ(flip.param, 7);
  EXPECT_EQ(inj.OnSite("c.x").kind, FaultKind::kFail);
  // Sites count hits independently.
  EXPECT_FALSE(inj.OnSite("unrelated.site"));
}

TEST(FaultInjectionTest, FirstMatchingRuleWins) {
  FaultInjector inj;
  ASSERT_TRUE(inj.Configure("s:fail@*;s:nan@*").ok());
  EXPECT_EQ(inj.OnSite("s").kind, FaultKind::kFail);
}

TEST(FaultInjectionTest, ClearDisarms) {
  FaultInjector inj;
  ASSERT_TRUE(inj.Configure("s:fail@*").ok());
  EXPECT_TRUE(inj.OnSite("s"));
  inj.Clear();
  EXPECT_FALSE(inj.armed());
  EXPECT_FALSE(inj.OnSite("s"));
  EXPECT_EQ(inj.fire_count(), 0);
}

TEST(FaultInjectionTest, ReconfigureResetsHitCounters) {
  FaultInjector inj;
  ASSERT_TRUE(inj.Configure("s:fail@2").ok());
  EXPECT_FALSE(inj.OnSite("s"));
  ASSERT_TRUE(inj.Configure("s:fail@2").ok());
  EXPECT_FALSE(inj.OnSite("s"));  // counter restarted
  EXPECT_TRUE(inj.OnSite("s"));
}

TEST(FaultInjectionTest, EmptySpecDisarms) {
  FaultInjector inj;
  ASSERT_TRUE(inj.Configure("s:fail@*").ok());
  ASSERT_TRUE(inj.Configure("").ok());
  EXPECT_FALSE(inj.armed());
  ASSERT_TRUE(inj.Configure(" ; ;").ok());
  EXPECT_FALSE(inj.armed());
}

TEST(FaultInjectionTest, MalformedSpecsRejectedAndRulesKept) {
  FaultInjector inj;
  ASSERT_TRUE(inj.Configure("keep.me:fail@*").ok());
  for (const char* bad :
       {"siteonly", "s:explode", "s:fail:notanumber", "s:fail:-3",
        "s:fail@zero", "s:fail@0", ":fail", "s:fail:1:2"}) {
    const auto status = inj.Configure(bad);
    ASSERT_FALSE(status.ok()) << bad;
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << bad;
  }
  // The previous configuration survived every failed Configure.
  EXPECT_EQ(inj.OnSite("keep.me").kind, FaultKind::kFail);
}

}  // namespace
}  // namespace desalign::common
