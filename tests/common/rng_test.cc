#include "common/rng.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace desalign::common {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform() == b.Uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, UniformIntRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(10);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 10);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit over 1000 draws
}

TEST(RngTest, NormalMoments) {
  Rng rng(7);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(7);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(7);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  ASSERT_EQ(sample.size(), 30u);
  std::set<int64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (int64_t v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(RngTest, SampleWholePopulation) {
  Rng rng(7);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (int64_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(7);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ForkedStreamsAreIndependentButDeterministic) {
  Rng a(5);
  Rng b(5);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(fa.Uniform(), fb.Uniform());
  }
}

}  // namespace
}  // namespace desalign::common
