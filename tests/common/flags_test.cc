#include "common/flags.h"

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace desalign::common {
namespace {

std::vector<const char*> Argv(std::initializer_list<const char*> args) {
  return std::vector<const char*>(args);
}

TEST(FlagParserTest, DefaultsAppliedBeforeParse) {
  FlagParser parser("test");
  std::string s;
  int64_t i;
  double d;
  bool b;
  parser.AddString("name", "fallback", "", &s);
  parser.AddInt64("count", 42, "", &i);
  parser.AddDouble("ratio", 0.5, "", &d);
  parser.AddBool("fast", true, "", &b);
  EXPECT_EQ(s, "fallback");
  EXPECT_EQ(i, 42);
  EXPECT_DOUBLE_EQ(d, 0.5);
  EXPECT_TRUE(b);
}

TEST(FlagParserTest, ParsesEqualsAndSpaceSyntax) {
  FlagParser parser("test");
  std::string s;
  int64_t i;
  parser.AddString("name", "", "", &s);
  parser.AddInt64("count", 0, "", &i);
  auto argv = Argv({"--name=abc", "--count", "17"});
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data(), 0)
                  .ok());
  EXPECT_EQ(s, "abc");
  EXPECT_EQ(i, 17);
}

TEST(FlagParserTest, BoolForms) {
  FlagParser parser("test");
  bool a;
  bool b;
  bool c;
  parser.AddBool("alpha", false, "", &a);
  parser.AddBool("beta", true, "", &b);
  parser.AddBool("gamma", false, "", &c);
  auto argv = Argv({"--alpha", "--no-beta", "--gamma=true"});
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data(), 0)
                  .ok());
  EXPECT_TRUE(a);
  EXPECT_FALSE(b);
  EXPECT_TRUE(c);
}

TEST(FlagParserTest, CollectsPositionals) {
  FlagParser parser("test");
  int64_t i;
  parser.AddInt64("n", 0, "", &i);
  auto argv = Argv({"first", "--n=3", "second"});
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data(), 0)
                  .ok());
  ASSERT_EQ(parser.positional().size(), 2u);
  EXPECT_EQ(parser.positional()[0], "first");
  EXPECT_EQ(parser.positional()[1], "second");
}

TEST(FlagParserTest, UnknownFlagIsError) {
  FlagParser parser("test");
  auto argv = Argv({"--bogus=1"});
  auto status = parser.Parse(static_cast<int>(argv.size()), argv.data(), 0);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(FlagParserTest, MalformedNumbersAreErrors) {
  FlagParser parser("test");
  int64_t i;
  double d;
  parser.AddInt64("count", 0, "", &i);
  parser.AddDouble("ratio", 0, "", &d);
  {
    auto argv = Argv({"--count=abc"});
    EXPECT_FALSE(
        parser.Parse(static_cast<int>(argv.size()), argv.data(), 0).ok());
  }
  {
    auto argv = Argv({"--ratio=1.2.3"});
    EXPECT_FALSE(
        parser.Parse(static_cast<int>(argv.size()), argv.data(), 0).ok());
  }
}

TEST(FlagParserTest, MissingValueIsError) {
  FlagParser parser("test");
  std::string s;
  parser.AddString("name", "", "", &s);
  auto argv = Argv({"--name"});
  EXPECT_FALSE(
      parser.Parse(static_cast<int>(argv.size()), argv.data(), 0).ok());
}

TEST(FlagParserTest, HelpShortCircuits) {
  FlagParser parser("test tool");
  auto argv = Argv({"--help"});
  auto status = parser.Parse(static_cast<int>(argv.size()), argv.data(), 0);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(FlagParserTest, UsageListsFlagsAndDefaults) {
  FlagParser parser("my tool");
  int64_t i;
  parser.AddInt64("epochs", 60, "training epochs", &i);
  const std::string usage = parser.Usage();
  EXPECT_NE(usage.find("my tool"), std::string::npos);
  EXPECT_NE(usage.find("--epochs"), std::string::npos);
  EXPECT_NE(usage.find("60"), std::string::npos);
  EXPECT_NE(usage.find("training epochs"), std::string::npos);
}

TEST(ParseListsTest, DoubleList) {
  auto r = ParseDoubleList("0.1, 0.5 ,1");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 3u);
  EXPECT_DOUBLE_EQ(r.value()[1], 0.5);
  EXPECT_FALSE(ParseDoubleList("1,x").ok());
  EXPECT_TRUE(ParseDoubleList("").ok());
}

TEST(ParseListsTest, StringList) {
  auto v = ParseStringList(" a ,b,, c ");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[2], "c");
}

TEST(ThreadsFlagTest, ParsesAndSizesGlobalPool) {
  FlagParser parser("test");
  int64_t threads;
  AddThreadsFlag(parser, &threads);
  auto argv = Argv({"prog", "--threads=2"});
  ASSERT_TRUE(
      parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(threads, 2);
  ASSERT_TRUE(ApplyThreadsFlag(threads).ok());
  EXPECT_EQ(ThreadPool::Global().num_threads(), 2);
  EXPECT_FALSE(ApplyThreadsFlag(-1).ok());
  // Restore the automatic default for the rest of the test binary.
  ASSERT_TRUE(ApplyThreadsFlag(0).ok());
  EXPECT_EQ(ThreadPool::Global().num_threads(),
            ThreadPool::DefaultThreadCount());
}

}  // namespace
}  // namespace desalign::common
