#include "common/clock.h"

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "common/mutex.h"

namespace desalign::common {
namespace {

TEST(ClockTest, RealClockIsMonotonic) {
  Clock* clock = Clock::Real();
  const Clock::TimePoint a = clock->Now();
  const Clock::TimePoint b = clock->Now();
  EXPECT_LE(a, b);
  EXPECT_GE(clock->MillisSince(a), 0.0);
}

TEST(ClockTest, RealClockSleepForAdvancesTime) {
  Clock* clock = Clock::Real();
  const Clock::TimePoint start = clock->Now();
  clock->SleepFor(Clock::FromMillis(5.0));
  EXPECT_GE(clock->MillisSince(start), 4.0);  // scheduler slop tolerance
}

TEST(ClockTest, FromMillisRoundTrips) {
  EXPECT_EQ(Clock::FromMillis(1000.0),
            std::chrono::duration_cast<Clock::Duration>(
                std::chrono::seconds(1)));
  EXPECT_EQ(Clock::FromMillis(0.0), Clock::Duration::zero());
}

TEST(ManualClockTest, TimeOnlyMovesWhenAdvanced) {
  ManualClock clock;
  const Clock::TimePoint start = clock.Now();
  EXPECT_EQ(clock.Now(), start);
  clock.AdvanceBy(Clock::FromMillis(10.0));
  EXPECT_EQ(clock.Now(), start + Clock::FromMillis(10.0));
  EXPECT_DOUBLE_EQ(clock.MillisSince(start), 10.0);
}

TEST(ManualClockTest, AdvanceToNeverMovesBackwards) {
  ManualClock clock;
  const Clock::TimePoint start = clock.Now();
  clock.AdvanceBy(Clock::FromMillis(20.0));
  clock.AdvanceTo(start + Clock::FromMillis(5.0));
  EXPECT_EQ(clock.Now(), start + Clock::FromMillis(20.0));
}

TEST(ManualClockTest, SleepForAdvancesInsteadOfBlocking) {
  ManualClock clock;
  const Clock::TimePoint start = clock.Now();
  clock.SleepFor(Clock::FromMillis(50.0));
  EXPECT_EQ(clock.Now(), start + Clock::FromMillis(50.0));
  EXPECT_EQ(clock.sleep_calls(), 1);
}

TEST(ManualClockTest, WaitUntilWithPastDeadlineTimesOutWithoutParking) {
  ManualClock clock;
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  EXPECT_EQ(clock.WaitUntil(cv, mu, lock, clock.Now()),
            std::cv_status::timeout);
  EXPECT_EQ(clock.wait_calls(), 0);
}

// The lost-wakeup regression: a waiter that checked the deadline but has
// not parked yet must still be woken by a concurrent Advance*. The mutex
// handshake in WakeWaiters guarantees it; under TSan this test is also
// the data-race gate for the clock.
TEST(ManualClockTest, AdvancePastDeadlineWakesParkedWaiter) {
  ManualClock clock;
  Mutex mu;
  CondVar cv;
  const Clock::TimePoint deadline = clock.Now() + Clock::FromMillis(10.0);
  std::atomic<bool> timed_out{false};
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (clock.WaitUntil(cv, mu, lock, deadline) !=
           std::cv_status::timeout) {
      // Spurious (pre-deadline) wakeups re-enter the wait, like callers do.
    }
    timed_out.store(true);
  });
  // Spin until the waiter is registered and parked, then advance past the
  // deadline; determinism here is exactly what the serving tests rely on.
  while (clock.wait_calls() == 0) std::this_thread::yield();
  clock.AdvanceBy(Clock::FromMillis(20.0));
  waiter.join();
  EXPECT_TRUE(timed_out.load());
}

TEST(ManualClockTest, AdvanceShortOfDeadlineIsSpuriousWakeup) {
  ManualClock clock;
  Mutex mu;
  CondVar cv;
  const Clock::TimePoint deadline = clock.Now() + Clock::FromMillis(10.0);
  std::atomic<int> wakeups{0};
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (clock.WaitUntil(cv, mu, lock, deadline) !=
           std::cv_status::timeout) {
      wakeups.fetch_add(1);
    }
  });
  while (clock.wait_calls() == 0) std::this_thread::yield();
  clock.AdvanceBy(Clock::FromMillis(5.0));  // not enough: spurious
  while (clock.wait_calls() < 2) std::this_thread::yield();
  clock.AdvanceBy(Clock::FromMillis(5.0));  // reaches the deadline
  waiter.join();
  EXPECT_GE(wakeups.load(), 1);
}

TEST(ManualClockTest, AdvanceWakesEveryParkedWaiter) {
  ManualClock clock;
  Mutex mu;
  CondVar cv;
  const Clock::TimePoint deadline = clock.Now() + Clock::FromMillis(10.0);
  std::atomic<int> done{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 4; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      while (clock.WaitUntil(cv, mu, lock, deadline) !=
             std::cv_status::timeout) {
      }
      done.fetch_add(1);
    });
  }
  while (clock.wait_calls() < 4) std::this_thread::yield();
  clock.AdvanceBy(Clock::FromMillis(10.0));
  for (auto& w : waiters) w.join();
  EXPECT_EQ(done.load(), 4);
}

}  // namespace
}  // namespace desalign::common
