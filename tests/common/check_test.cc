#include "common/check.h"

#include <gtest/gtest.h>

namespace {

TEST(CheckTest, PassingChecksAreSilent) {
  DESALIGN_CHECK(true);
  DESALIGN_CHECK_EQ(1, 1);
  DESALIGN_CHECK_NE(1, 2);
  DESALIGN_CHECK_LT(1, 2);
  DESALIGN_CHECK_LE(2, 2);
  DESALIGN_CHECK_GT(3, 2);
  DESALIGN_CHECK_GE(3, 3);
  DESALIGN_CHECK_MSG(true, "never shown");
}

TEST(CheckDeathTest, FailureAborts) {
  EXPECT_DEATH(DESALIGN_CHECK(false), "CHECK failed");
  EXPECT_DEATH(DESALIGN_CHECK_EQ(1, 2), "CHECK failed");
  EXPECT_DEATH(DESALIGN_CHECK_MSG(false, "custom context"),
               "custom context");
}

TEST(CheckDeathTest, MessageNamesTheExpression) {
  const int x = 5;
  EXPECT_DEATH(DESALIGN_CHECK_LT(x, 3), "\\(x\\) < \\(3\\)");
}

TEST(CheckTest, DcheckCompiledPerBuildType) {
#ifdef NDEBUG
  DESALIGN_DCHECK(false);  // compiled out in release builds
#else
  EXPECT_DEATH(DESALIGN_DCHECK(false), "CHECK failed");
#endif
}

}  // namespace
