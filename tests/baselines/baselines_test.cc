#include <gtest/gtest.h>

#include "align/metrics.h"
#include "baselines/fusion_baselines.h"
#include "baselines/gcn_align.h"
#include "baselines/poe.h"
#include "baselines/transe.h"
#include "kg/synthetic.h"

namespace desalign::baselines {
namespace {

kg::AlignedKgPair SmallData(uint64_t seed = 61) {
  kg::SyntheticSpec spec;
  spec.num_entities = 130;
  spec.seed = seed;
  spec.seed_ratio = 0.3;
  return kg::GenerateSyntheticPair(spec);
}

TEST(FusionBaselinesTest, ConfigsEncodeTheFamilyLadder) {
  auto eva = EvaConfig();
  auto mclea = McleaConfig();
  auto meaformer = MeaformerConfig();
  EXPECT_FALSE(eva.use_cross_modal_attention);
  EXPECT_FALSE(eva.use_intra_modal_losses);
  EXPECT_FALSE(mclea.use_cross_modal_attention);
  EXPECT_TRUE(mclea.use_intra_modal_losses);
  EXPECT_TRUE(meaformer.use_cross_modal_attention);
  EXPECT_TRUE(meaformer.use_intra_modal_losses);
  // None of the baselines uses DESAlign's min-confidence weighting, and all
  // interpolate missing features from a predefined distribution.
  for (const auto& cfg : {eva, mclea, meaformer}) {
    EXPECT_FALSE(cfg.use_min_confidence);
    EXPECT_EQ(cfg.missing_policy,
              align::MissingFeaturePolicy::kRandomFromDistribution);
  }
}

TEST(FusionBaselinesTest, FactoriesProduceNamedModels) {
  EXPECT_EQ(MakeEva()->name(), "EVA");
  EXPECT_EQ(MakeMclea()->name(), "MCLEA");
  EXPECT_EQ(MakeMeaformer()->name(), "MEAformer");
}

TEST(GcnAlignTest, TrainsAboveChance) {
  auto data = SmallData();
  GcnAlignConfig cfg;
  cfg.dim = 16;
  cfg.epochs = 30;
  GcnAlignModel model(cfg);
  auto r = model.Evaluate(data);
  EXPECT_GT(r.metrics.h_at_1, 0.05);
  EXPECT_EQ(r.metrics.num_queries,
            static_cast<int64_t>(data.test_pairs.size()));
}

TEST(TranseTest, TrainsAboveChanceViaSharedSeeds) {
  auto data = SmallData();
  TranseConfig cfg;
  cfg.dim = 16;
  cfg.epochs = 30;
  TranseModel model(cfg);
  auto r = model.Evaluate(data);
  // Structure-only: weak but above the ~1% chance level.
  EXPECT_GT(r.metrics.h_at_10, 0.08);
}

TEST(TranseTest, SeedPairsShareEmbeddingRows) {
  auto data = SmallData();
  TranseConfig cfg;
  cfg.dim = 8;
  cfg.epochs = 1;
  TranseModel model(cfg);
  model.Fit(data);
  // Decode on the TRAIN pairs: shared rows means similarity exactly 1.
  kg::AlignedKgPair probe = data;
  probe.test_pairs = data.train_pairs;
  auto sim = model.DecodeSimilarity(probe);
  for (int64_t i = 0; i < sim->rows(); ++i) {
    EXPECT_NEAR(sim->At(i, i), 1.0f, 1e-4);
  }
}

TEST(BaselineOrderingTest, FusionFamilyBeatsStructureOnly) {
  auto data = SmallData(62);
  TranseConfig transe_cfg;
  transe_cfg.dim = 16;
  transe_cfg.epochs = 20;
  TranseModel transe(transe_cfg);
  auto r_transe = transe.Evaluate(data);

  auto mea_cfg = MeaformerConfig(3);
  mea_cfg.dim = 16;
  mea_cfg.epochs = 25;
  align::FusionAlignModel meaformer(mea_cfg);
  auto r_mea = meaformer.Evaluate(data);

  EXPECT_GT(r_mea.metrics.mrr, r_transe.metrics.mrr);
}


TEST(PoeTest, LearnsExpertWeightsAndScoresAboveChance) {
  auto data = SmallData(63);
  PoeConfig cfg;
  cfg.fit_iterations = 100;
  PoeModel model(cfg);
  auto r = model.Evaluate(data);
  // No representation learning: modest, but clearly above ~1% chance.
  EXPECT_GT(r.metrics.h_at_10, 0.15);
  ASSERT_EQ(model.expert_weights().size(), 4u);
}

TEST(PoeTest, DecodeRequiresFit) {
  PoeConfig cfg;
  PoeModel model(cfg);
  auto data = SmallData(63);
  EXPECT_DEATH(model.DecodeSimilarity(data), "fitted");
}

TEST(IpTranseTest, IterativeRoundsDoNotRegress) {
  auto data = SmallData(64);
  TranseConfig base_cfg;
  base_cfg.dim = 16;
  base_cfg.epochs = 20;
  TranseModel base(base_cfg);
  auto r_base = base.Evaluate(data);

  TranseConfig ip_cfg = IpTranseConfig();
  ip_cfg.dim = 16;
  ip_cfg.epochs = 20;
  TranseModel ip(ip_cfg);
  auto r_ip = ip.Evaluate(data);
  EXPECT_EQ(ip.name(), "IPTransE");
  EXPECT_GE(r_ip.metrics.h_at_10, r_base.metrics.h_at_10 - 0.05);
}

TEST(AttrGnnTest, AttributeInputModeTrains) {
  auto data = SmallData(65);
  GcnAlignConfig cfg = AttrGnnConfig();
  cfg.dim = 16;
  cfg.epochs = 30;
  GcnAlignModel model(cfg);
  auto r = model.Evaluate(data);
  EXPECT_EQ(model.name(), "AttrGNN");
  EXPECT_GT(r.metrics.h_at_1, 0.03);
}

TEST(MmeaTest, MarginRankingVariantTrains) {
  auto data = SmallData(66);
  auto cfg = MmeaConfig(2);
  cfg.dim = 16;
  cfg.epochs = 30;
  align::FusionAlignModel model(cfg);
  auto r = model.Evaluate(data);
  EXPECT_GT(r.metrics.h_at_1, 0.05);
  // Margin-era objective is expected to trail contrastive EVA.
  auto eva_cfg = EvaConfig(2);
  eva_cfg.dim = 16;
  eva_cfg.epochs = 30;
  align::FusionAlignModel eva(eva_cfg);
  auto r_eva = eva.Evaluate(data);
  EXPECT_GE(r_eva.metrics.mrr, r.metrics.mrr - 0.1);
}

}  // namespace
}  // namespace desalign::baselines
