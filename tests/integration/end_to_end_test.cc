// Cross-module integration tests: the full pipeline from dataset
// generation through training, iterative refinement, propagation decoding
// and evaluation — plus persistence round trips feeding training.

#include <filesystem>

#include <gtest/gtest.h>

#include "align/iterative.h"
#include "align/metrics.h"
#include "baselines/fusion_baselines.h"
#include "core/desalign.h"
#include "eval/harness.h"
#include "kg/io.h"
#include "kg/presets.h"
#include "kg/synthetic.h"

namespace desalign {
namespace {

kg::AlignedKgPair Data(uint64_t seed, int64_t n = 140) {
  kg::SyntheticSpec spec = kg::PresetFbDb15k();
  spec.num_entities = n;
  spec.seed = seed;
  spec.seed_ratio = 0.3;
  return kg::GenerateSyntheticPair(spec);
}

core::DesalignConfig Fast(uint64_t seed) {
  auto cfg = core::DesalignConfig::Default(seed);
  cfg.base.dim = 16;
  cfg.base.epochs = 25;
  return cfg;
}

TEST(EndToEndTest, DesalignPipelineOnPresetData) {
  auto data = Data(71);
  core::DesalignModel model(Fast(1));
  auto result = model.Evaluate(data);
  EXPECT_GT(result.metrics.h_at_1, 0.3);
  EXPECT_GT(result.metrics.h_at_10, result.metrics.h_at_1);
  EXPECT_GT(result.train_seconds, 0.0);
}

TEST(EndToEndTest, IterativeStrategyOnDesalign) {
  auto data = Data(72);
  core::DesalignModel model(Fast(2));
  model.Fit(data);
  auto before = align::MetricsFromSimilarity(*model.DecodeSimilarity(data));
  align::IterativeConfig iter;
  iter.rounds = 1;
  iter.epochs_per_round = 15;
  align::RunIterativeRefinement(model, data, iter);
  auto after = align::MetricsFromSimilarity(*model.DecodeSimilarity(data));
  EXPECT_GE(after.h_at_1, before.h_at_1 - 0.05);
}

TEST(EndToEndTest, SavedDatasetTrainsIdentically) {
  auto data = Data(73);
  const auto dir = std::filesystem::temp_directory_path() /
                   "desalign_e2e_roundtrip";
  ASSERT_TRUE(kg::SaveDataset(data, dir.string()).ok());
  auto loaded = kg::LoadDataset(dir.string());
  ASSERT_TRUE(loaded.ok());
  std::filesystem::remove_all(dir);

  core::DesalignModel a(Fast(3));
  core::DesalignModel b(Fast(3));
  auto ra = a.Evaluate(data);
  auto rb = b.Evaluate(loaded.value());
  EXPECT_DOUBLE_EQ(ra.metrics.mrr, rb.metrics.mrr);
  EXPECT_DOUBLE_EQ(ra.metrics.h_at_1, rb.metrics.h_at_1);
}

TEST(EndToEndTest, HarnessRunsEveryRegisteredMethod) {
  auto data = Data(74, /*n=*/100);
  for (const auto& factory : eval::AllBasicMethods()) {
    auto result = eval::RunCell(factory, data, /*seed=*/5);
    EXPECT_GE(result.metrics.h_at_1, 0.0) << factory.name;
    EXPECT_GT(result.metrics.mrr, 0.0) << factory.name;
    EXPECT_EQ(result.metrics.num_queries,
              static_cast<int64_t>(data.test_pairs.size()))
        << factory.name;
  }
}

TEST(EndToEndTest, HarnessIterativeMode) {
  auto data = Data(75, /*n=*/100);
  eval::NamedFactory desalign_factory = eval::ProminentMethods().back();
  ASSERT_EQ(desalign_factory.name, "DESAlign");
  align::IterativeConfig iter;
  iter.rounds = 1;
  iter.epochs_per_round = 10;
  auto result = eval::RunCell(desalign_factory, data, 6, /*iterative=*/true,
                              iter);
  EXPECT_GT(result.metrics.h_at_1, 0.2);
}

TEST(EndToEndTest, RobustnessShapeUnderMissingImages) {
  // The paper's central claim (Q1): DESAlign degrades less than the
  // noise-interpolating baseline when images go missing.
  kg::SyntheticSpec spec = kg::PresetFbDb15k();
  spec.num_entities = 140;
  spec.seed = 76;
  spec.seed_ratio = 0.3;

  spec.image_ratio = 0.9;
  auto rich = kg::GenerateSyntheticPair(spec);
  spec.image_ratio = 0.2;
  auto poor = kg::GenerateSyntheticPair(spec);

  auto run = [&](const kg::AlignedKgPair& d, bool ours) {
    if (ours) {
      core::DesalignModel m(Fast(7));
      return m.Evaluate(d).metrics.mrr;
    }
    auto cfg = baselines::EvaConfig(7);
    cfg.dim = 16;
    cfg.epochs = 25;
    align::FusionAlignModel m(cfg);
    return m.Evaluate(d).metrics.mrr;
  };
  const double ours_drop = run(rich, true) - run(poor, true);
  const double eva_drop = run(rich, false) - run(poor, false);
  // DESAlign's drop should not exceed the baseline's by a wide margin —
  // typically it is smaller.
  EXPECT_LT(ours_drop, eva_drop + 0.1);
}

}  // namespace
}  // namespace desalign
