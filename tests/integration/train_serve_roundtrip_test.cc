// End-to-end pipeline test: synthetic MMKG → train DESAlign → persist
// embeddings through a checkpoint → EmbeddingStore::Load → top-k
// retrieval. The serving stack must return exactly what the in-memory
// model would predict — the checkpoint hop and the blocked/parallel
// retrieval path are not allowed to change a single result.

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/desalign.h"
#include "kg/synthetic.h"
#include "serve/embedding_store.h"
#include "serve/topk.h"

namespace desalign {
namespace {

kg::AlignedKgPair TinyData(uint64_t seed = 93) {
  kg::SyntheticSpec spec;
  spec.num_entities = 80;
  spec.seed = seed;
  spec.seed_ratio = 0.3;
  return kg::GenerateSyntheticPair(spec);
}

core::DesalignConfig TinyConfig(uint64_t seed = 5) {
  auto cfg = core::DesalignConfig::Default(seed);
  cfg.base.dim = 8;
  cfg.base.epochs = 5;
  cfg.propagation_iterations = 2;
  return cfg;
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class TrainServeRoundtripTest : public ::testing::Test {
 protected:
  // Train once for the whole suite; every test reads the same artifacts.
  static void SetUpTestSuite() {
    data_ = std::make_unique<kg::AlignedKgPair>(TinyData());
    model_ = std::make_unique<core::DesalignModel>(TinyConfig());
    model_->Fit(*data_);
  }
  static void TearDownTestSuite() {
    model_.reset();
    data_.reset();
  }

  static std::unique_ptr<kg::AlignedKgPair> data_;
  static std::unique_ptr<core::DesalignModel> model_;
};

std::unique_ptr<kg::AlignedKgPair> TrainServeRoundtripTest::data_;
std::unique_ptr<core::DesalignModel> TrainServeRoundtripTest::model_;

// Target-KG block of the fused table, in serving's local id space.
std::vector<float> TargetBlock(core::DesalignModel& model) {
  auto embeddings = model.FusedEmbeddings();
  const int64_t num_source = model.num_source_entities();
  const int64_t d = embeddings->cols();
  return std::vector<float>(
      embeddings->data().begin() + num_source * d, embeddings->data().end());
}

TEST_F(TrainServeRoundtripTest, CheckpointRoundTripIsBitExact) {
  auto block = TargetBlock(*model_);
  auto embeddings = model_->FusedEmbeddings();
  const int64_t num_target =
      embeddings->rows() - model_->num_source_entities();
  const auto built = serve::EmbeddingStore::FromRows(
      num_target, embeddings->cols(), std::move(block));
  const std::string path = TempPath("desalign_roundtrip_store.ckpt");
  ASSERT_TRUE(built.Save(path).ok());
  auto loaded = serve::EmbeddingStore::Load(path);
  std::filesystem::remove(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), built.size());
  ASSERT_EQ(loaded.value().dim(), built.dim());
  EXPECT_EQ(std::memcmp(loaded.value().data().data(), built.data().data(),
                        built.data().size() * sizeof(float)),
            0)
      << "checkpoint round trip altered normalized embeddings";
}

TEST_F(TrainServeRoundtripTest, RetrievalAgreesWithInMemoryModel) {
  auto embeddings = model_->FusedEmbeddings();
  const int64_t num_source = model_->num_source_entities();
  const int64_t num_target = embeddings->rows() - num_source;
  const int64_t d = embeddings->cols();

  const auto built = serve::EmbeddingStore::FromRows(
      num_target, d, TargetBlock(*model_));
  const std::string path = TempPath("desalign_roundtrip_topk.ckpt");
  ASSERT_TRUE(built.Save(path).ok());
  auto loaded = serve::EmbeddingStore::Load(path);
  std::filesystem::remove(path);
  ASSERT_TRUE(loaded.ok());

  // Queries: every test pair's source entity, straight from the model.
  const int64_t k = 5;
  std::vector<float> queries;
  std::vector<int64_t> query_sources;
  for (const auto& pair : data_->test_pairs) {
    const float* row = embeddings->data().data() + pair.source * d;
    queries.insert(queries.end(), row, row + d);
    query_sources.push_back(pair.source);
  }
  const int64_t num_queries =
      static_cast<int64_t>(query_sources.size());
  ASSERT_GT(num_queries, 0);

  serve::TopKRetriever retriever(&loaded.value());
  const auto served = retriever.Retrieve(queries.data(), num_queries, k);
  const auto brute =
      retriever.RetrieveBruteForce(queries.data(), num_queries, k);
  ASSERT_EQ(served.size(), brute.size());

  // In-memory prediction: double-precision cosine against the raw fused
  // target rows (the model's own view, no store normalization path).
  for (int64_t q = 0; q < num_queries; ++q) {
    ASSERT_EQ(served[q].ids, brute[q].ids) << "query " << q;
    ASSERT_EQ(served[q].scores.size(), static_cast<size_t>(k));
    const float* query_row =
        embeddings->data().data() + query_sources[q] * d;
    double qnorm = 0.0;
    for (int64_t c = 0; c < d; ++c) {
      qnorm += static_cast<double>(query_row[c]) * query_row[c];
    }
    qnorm = std::sqrt(qnorm);
    std::vector<std::pair<double, int64_t>> scored;
    scored.reserve(num_target);
    for (int64_t t = 0; t < num_target; ++t) {
      const float* target_row =
          embeddings->data().data() + (num_source + t) * d;
      double dot = 0.0;
      double tnorm = 0.0;
      for (int64_t c = 0; c < d; ++c) {
        dot += static_cast<double>(query_row[c]) * target_row[c];
        tnorm += static_cast<double>(target_row[c]) * target_row[c];
      }
      tnorm = std::sqrt(tnorm);
      const double cosine =
          (qnorm > 0.0 && tnorm > 0.0) ? dot / (qnorm * tnorm) : 0.0;
      // Same tie order as TopKResult: score descending, id ascending.
      scored.emplace_back(-cosine, t);
    }
    std::sort(scored.begin(), scored.end());
    for (int64_t i = 0; i < k; ++i) {
      EXPECT_EQ(served[q].ids[i], scored[i].second)
          << "query " << q << " rank " << i;
      EXPECT_NEAR(served[q].scores[i], -scored[i].first, 1e-4)
          << "query " << q << " rank " << i;
    }
  }
}

TEST_F(TrainServeRoundtripTest, ModelCheckpointRestoresIdenticalModel) {
  const std::string path = TempPath("desalign_roundtrip_model.ckpt");
  ASSERT_TRUE(model_->SaveCheckpoint(path).ok());

  core::DesalignModel restored(TinyConfig(/*seed=*/99));  // different init
  restored.Warmup(*data_);
  ASSERT_TRUE(restored.LoadCheckpoint(path).ok());
  std::filesystem::remove(path);

  auto original = model_->FusedEmbeddings();
  auto reloaded = restored.FusedEmbeddings();
  ASSERT_EQ(original->size(), reloaded->size());
  EXPECT_EQ(std::memcmp(original->data().data(), reloaded->data().data(),
                        static_cast<size_t>(original->size()) * sizeof(float)),
            0)
      << "restored model computes different embeddings";

  auto sim_a = model_->DecodeSimilarity(*data_);
  auto sim_b = restored.DecodeSimilarity(*data_);
  ASSERT_EQ(sim_a->size(), sim_b->size());
  EXPECT_EQ(std::memcmp(sim_a->data().data(), sim_b->data().data(),
                        static_cast<size_t>(sim_a->size()) * sizeof(float)),
            0)
      << "restored model decodes different similarities";
}

}  // namespace
}  // namespace desalign
