// Determinism suite: a full small-config DESAlign training run must be
// bit-exact across repeated runs with the same seed and across thread
// counts. Reproducible comparisons are the foundation the benchmarking
// harness (and the paper's tables) stand on — any nondeterminism in the
// tensor kernels, the thread-pool partitioning, or the training loop shows
// up here as a float-for-float mismatch.

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/desalign.h"
#include "kg/synthetic.h"
#include "tensor/kernels/buffer_pool.h"
#include "tensor/kernels/dispatch.h"
#include "tensor/kernels/solver/find_db.h"
#include "tensor/kernels/solver/solver.h"
#include "tensor/tensor.h"

namespace desalign {
namespace {

kg::AlignedKgPair TinyData(uint64_t seed = 91) {
  kg::SyntheticSpec spec;
  spec.num_entities = 70;
  spec.seed = seed;
  spec.seed_ratio = 0.3;
  return kg::GenerateSyntheticPair(spec);
}

core::DesalignConfig TinyConfig(uint64_t seed = 5) {
  auto cfg = core::DesalignConfig::Default(seed);
  cfg.base.dim = 8;
  cfg.base.epochs = 4;
  cfg.propagation_iterations = 2;
  return cfg;
}

struct RunArtifacts {
  std::vector<float> fused;
  std::vector<float> similarity;
};

// One complete train → decode journey; returns every float the run
// produced so callers can compare runs bit-for-bit.
RunArtifacts TrainAndDecode(const kg::AlignedKgPair& data, uint64_t seed) {
  core::DesalignModel model(TinyConfig(seed));
  model.Fit(data);
  auto fused = model.FusedEmbeddings();
  auto sim = model.DecodeSimilarity(data);
  RunArtifacts out;
  out.fused.assign(fused->data().begin(), fused->data().end());
  out.similarity.assign(sim->data().begin(), sim->data().end());
  return out;
}

// memcmp, not EXPECT_FLOAT_EQ: the claim is bit-exactness, and a byte
// compare also distinguishes -0.0f from 0.0f and catches NaN payloads.
void ExpectBitExact(const std::vector<float>& a, const std::vector<float>& b,
                    const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  ASSERT_FALSE(a.empty()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
      << what << ": runs diverged";
}

TEST(DeterminismTest, SameSeedSameRunBitExact) {
  auto data = TinyData();
  const RunArtifacts first = TrainAndDecode(data, 5);
  const RunArtifacts second = TrainAndDecode(data, 5);
  ExpectBitExact(first.fused, second.fused, "fused embeddings");
  ExpectBitExact(first.similarity, second.similarity, "decoded similarity");
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  auto data = TinyData();
  const RunArtifacts a = TrainAndDecode(data, 5);
  const RunArtifacts b = TrainAndDecode(data, 6);
  ASSERT_EQ(a.fused.size(), b.fused.size());
  EXPECT_NE(std::memcmp(a.fused.data(), b.fused.data(),
                        a.fused.size() * sizeof(float)),
            0)
      << "different init seeds produced identical embeddings";
}

TEST(DeterminismTest, ThreadCountInvariant) {
  auto data = TinyData();
  common::ThreadPool::SetGlobalThreadCount(1);
  const RunArtifacts serial = TrainAndDecode(data, 5);
  common::ThreadPool::SetGlobalThreadCount(4);
  const RunArtifacts parallel = TrainAndDecode(data, 5);
  common::ThreadPool::SetGlobalThreadCount(0);  // restore automatic
  ExpectBitExact(serial.fused, parallel.fused, "fused embeddings");
  ExpectBitExact(serial.similarity, parallel.similarity,
                 "decoded similarity");
}

// The BufferPool hands out recycled (possibly stale) storage; results must
// not depend on it. Train with the pool disabled (fresh zeroed allocations,
// the pre-pool behaviour), then twice with it enabled — the second enabled
// run recycles dirty buffers from the first, which is exactly the state
// where a kernel reading uninitialized output storage would diverge.
TEST(DeterminismTest, BufferPoolInvariant) {
  auto data = TinyData();
  auto& pool = tensor::kernels::BufferPool::Global();
  pool.set_enabled(false);
  const RunArtifacts off = TrainAndDecode(data, 5);
  pool.set_enabled(true);
  pool.Clear();
  const RunArtifacts cold = TrainAndDecode(data, 5);
  const RunArtifacts warm = TrainAndDecode(data, 5);
  ExpectBitExact(off.fused, cold.fused, "fused embeddings (pool off vs on)");
  ExpectBitExact(off.similarity, cold.similarity,
                 "decoded similarity (pool off vs on)");
  ExpectBitExact(off.fused, warm.fused,
                 "fused embeddings (pool off vs warm/dirty pool)");
  ExpectBitExact(off.similarity, warm.similarity,
                 "decoded similarity (pool off vs warm/dirty pool)");
}

// ISA selection is a speed knob, never a numerics knob: forcing the scalar
// bodies must reproduce the auto-dispatched (possibly AVX2) run exactly.
TEST(DeterminismTest, IsaInvariant) {
  auto data = TinyData();
  const RunArtifacts auto_isa = TrainAndDecode(data, 5);
  tensor::kernels::SetIsaOverride(tensor::kernels::IsaLevel::kScalar);
  const RunArtifacts scalar = TrainAndDecode(data, 5);
  tensor::kernels::SetIsaOverride(tensor::kernels::IsaLevel::kScalar,
                                  /*has_override=*/false);
  ExpectBitExact(auto_isa.fused, scalar.fused, "fused embeddings");
  ExpectBitExact(auto_isa.similarity, scalar.similarity,
                 "decoded similarity");
}

// Acceptance check for the pool: once every live shape has been seen, the
// epoch loop should run close to allocation-free. The first run warms the
// buckets; the second must be served almost entirely from them.
TEST(DeterminismTest, BufferPoolSteadyStateHitRate) {
  auto data = TinyData();
  auto& pool = tensor::kernels::BufferPool::Global();
  pool.set_enabled(true);
  TrainAndDecode(data, 5);  // warm the buckets
  pool.ResetStats();
  TrainAndDecode(data, 5);
  const auto stats = pool.GetStats();
  ASSERT_GT(stats.hits + stats.misses, 0);
  // Not exactly 1.0: a bucket that overflows kMaxBuffersPerBucket at the
  // peak of the graph discards, and those allocations miss again next run.
  EXPECT_GE(stats.HitRate(), 0.95)
      << "steady-state training should recycle nearly every buffer, got "
      << stats.hits << " hits / " << stats.misses << " misses";
}

// The GEMM solver registry replays its tuning cache (find-db) and nothing
// else, so which solver serves a shape is a pure function of the cache
// file — identical under every thread count and every DESALIGN_KERNEL_ISA /
// override setting. This is what lets a tuned machine stay bit-exact with
// an untuned one: selection changes speed, the solvers themselves are all
// bit-identical to the reference.
TEST(DeterminismTest, SolverSelectionReplaysCacheAcrossThreadsAndIsa) {
  namespace solver = tensor::kernels::solver;
  auto& registry = solver::SolverRegistry::Global();
  const std::string path =
      (std::filesystem::temp_directory_path() /
       "desalign_determinism_find_db.bin")
          .string();

  solver::FindDb db;
  solver::FindDbRecord rec;
  rec.key = solver::ProblemKey::FromProblem(solver::GemmProblem{
      solver::GemmOp::kMatMul, 70, 8, 70, tensor::kernels::IsaLevel::kScalar,
      1});
  rec.solver_id = "gemm.blocked8x8";
  db.Upsert(rec);
  ASSERT_TRUE(db.Save(path).ok());
  ASSERT_TRUE(registry.ReloadCache(path).ok());

  const tensor::kernels::IsaLevel levels[] = {
      tensor::kernels::IsaLevel::kScalar, tensor::kernels::IsaLevel::kAvx2};
  for (const auto isa : levels) {
    for (const int threads : {1, 2, 4, 8}) {
      tensor::kernels::SetIsaOverride(isa);
      common::ThreadPool::SetGlobalThreadCount(threads);
      const auto p =
          solver::GemmProblem::Current(solver::GemmOp::kMatMul, 70, 8, 70);
      EXPECT_STREQ(registry.Select(p)->id(), "gemm.blocked8x8")
          << tensor::kernels::IsaName(isa) << " @" << threads << " threads";
      tensor::kernels::SetIsaOverride(tensor::kernels::IsaLevel::kScalar,
                                      /*has_override=*/false);
      common::ThreadPool::SetGlobalThreadCount(0);
    }
  }

  registry.ClearCache();
  std::filesystem::remove(path);
}

// End-to-end version of the same claim: a full train → decode run with the
// blocked solver tuned in must be bit-identical to the untuned (default
// solver) run.
TEST(DeterminismTest, TunedCacheDoesNotChangeTrainingOutput) {
  namespace solver = tensor::kernels::solver;
  auto& registry = solver::SolverRegistry::Global();
  auto data = TinyData();

  registry.ClearCache();
  const RunArtifacts untuned = TrainAndDecode(data, 5);

  // Tune every bucket a tiny run can hit toward the blocked solver: keys
  // are (op, ceil-log2 bucket), so a handful of cube stand-ins cover all
  // the rectangular shapes training actually produces.
  const std::string path =
      (std::filesystem::temp_directory_path() /
       "desalign_determinism_find_db_full.bin")
          .string();
  solver::FindDb db;
  for (const auto op :
       {solver::GemmOp::kMatMul, solver::GemmOp::kMatMulGradA,
        solver::GemmOp::kMatMulGradB}) {
    for (int64_t bm = 0; bm <= 8; ++bm) {
      for (int64_t bk = 0; bk <= 8; ++bk) {
        for (int64_t bn = 0; bn <= 8; ++bn) {
          solver::FindDbRecord rec;
          rec.key.op = static_cast<uint8_t>(op);
          rec.key.bm = static_cast<uint8_t>(bm);
          rec.key.bk = static_cast<uint8_t>(bk);
          rec.key.bn = static_cast<uint8_t>(bn);
          rec.solver_id = "gemm.blocked8x8";
          db.Upsert(rec);
        }
      }
    }
  }
  ASSERT_TRUE(db.Save(path).ok());
  ASSERT_TRUE(registry.ReloadCache(path).ok());
  const RunArtifacts tuned = TrainAndDecode(data, 5);
  registry.ClearCache();
  std::filesystem::remove(path);

  ExpectBitExact(untuned.fused, tuned.fused, "fused embeddings");
  ExpectBitExact(untuned.similarity, tuned.similarity, "decoded similarity");
}

TEST(DeterminismTest, DatasetGenerationIsSeedDeterministic) {
  auto a = TinyData(123);
  auto b = TinyData(123);
  ASSERT_EQ(a.train_pairs.size(), b.train_pairs.size());
  for (size_t i = 0; i < a.train_pairs.size(); ++i) {
    EXPECT_EQ(a.train_pairs[i].source, b.train_pairs[i].source);
    EXPECT_EQ(a.train_pairs[i].target, b.train_pairs[i].target);
  }
  ExpectBitExact(
      std::vector<float>(a.source.visual_features.features->data().begin(),
                         a.source.visual_features.features->data().end()),
      std::vector<float>(b.source.visual_features.features->data().begin(),
                         b.source.visual_features.features->data().end()),
      "visual features");
}

}  // namespace
}  // namespace desalign
