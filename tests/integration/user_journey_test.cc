// The full downstream-user journey in one test: generate → save → reload →
// degrade (perturb) → train DESAlign → checkpoint → restore in a fresh
// process-like model → decode with propagation → assignment matching.

#include <filesystem>

#include <gtest/gtest.h>

#include "align/assignment.h"
#include "align/metrics.h"
#include "core/desalign.h"
#include "kg/io.h"
#include "kg/perturb.h"
#include "kg/presets.h"
#include "kg/synthetic.h"

namespace desalign {
namespace {

TEST(UserJourneyTest, EndToEnd) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "desalign_user_journey";
  const auto ckpt = dir / "model.ckpt";

  // 1. Generate and persist a dataset.
  kg::SyntheticSpec spec = kg::PresetDbp15k(kg::Dbp15kLang::kZhEn);
  spec.num_entities = 120;
  spec.seed = 2024;
  auto data = kg::GenerateSyntheticPair(spec);
  ASSERT_TRUE(kg::SaveDataset(data, dir.string()).ok());

  // 2. Reload and degrade the visual modality (the real-data robustness
  //    workflow).
  auto loaded = kg::LoadDataset(dir.string());
  ASSERT_TRUE(loaded.ok());
  auto degraded = std::move(loaded).value();
  common::Rng rng(5);
  kg::DropModalityFeatures(degraded, kg::Modality::kVisual, 0.5, rng);

  // 3. Train DESAlign and checkpoint it.
  auto cfg = core::DesalignConfig::Default(/*seed=*/11);
  cfg.base.dim = 16;
  cfg.base.epochs = 25;
  cfg.propagation_iterations = 1;
  core::DesalignModel model(cfg);
  model.Fit(degraded);
  auto trained_metrics =
      align::MetricsFromSimilarity(*model.DecodeSimilarity(degraded));
  EXPECT_GT(trained_metrics.h_at_1, 0.25);
  ASSERT_TRUE(model.SaveCheckpoint(ckpt.string()).ok());

  // 4. Restore into a fresh model and verify identical decoding.
  core::DesalignModel restored(cfg);
  restored.Warmup(degraded);
  ASSERT_TRUE(restored.LoadCheckpoint(ckpt.string()).ok());
  auto sim = restored.DecodeSimilarity(degraded);
  auto restored_metrics = align::MetricsFromSimilarity(*sim);
  EXPECT_DOUBLE_EQ(restored_metrics.mrr, trained_metrics.mrr);

  // 5. Commit to a one-to-one matching; the optimal assignment should not
  //    fall below independent ranking accuracy by much (usually above).
  auto match = align::HungarianMatch(*sim);
  EXPECT_GE(align::MatchingAccuracy(match),
            trained_metrics.h_at_1 - 0.05);

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace desalign
