// Determinism suite for the quantized serving path: the int8 candidate
// scan + fp32 re-rank (and the bf16 single-pass scan) must return
// bit-identical results across thread counts, block sizes, shard counts
// and kernel ISA, and IVF-over-int8 at full probe with exact re-rank must
// reproduce the dequantized brute-force reference byte for byte. Any
// divergence here means a float accumulated in a thread-dependent order —
// exactly the bug class the serving determinism contract forbids.

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "index/ivf.h"
#include "nn/quant.h"
#include "serve/embedding_store.h"
#include "serve/row_source.h"
#include "serve/topk.h"
#include "tensor/kernels/dispatch.h"

namespace desalign {
namespace {

using nn::TensorDtype;
using serve::EmbeddingStore;
using serve::TopKResult;

constexpr int64_t kRows = 1500;
constexpr int64_t kDim = 24;
constexpr int64_t kQueries = 12;
constexpr int64_t kTopK = 7;

EmbeddingStore MakeStore(uint64_t seed) {
  common::Rng rng(seed);
  std::vector<float> data(static_cast<size_t>(kRows * kDim));
  for (auto& v : data) v = rng.UniformF(-1.0f, 1.0f);
  return EmbeddingStore::FromRows(kRows, kDim, std::move(data));
}

std::vector<float> MakeQueries(uint64_t seed) {
  common::Rng rng(seed);
  std::vector<float> q(static_cast<size_t>(kQueries * kDim));
  for (auto& v : q) v = rng.UniformF(-1.0f, 1.0f);
  return q;
}

void ExpectSameResults(const std::vector<TopKResult>& a,
                       const std::vector<TopKResult>& b,
                       const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].ids, b[i].ids) << what << ", query " << i;
    ASSERT_EQ(a[i].scores, b[i].scores) << what << ", query " << i;
  }
}

class IsaGuard {
 public:
  ~IsaGuard() {
    tensor::kernels::SetIsaOverride(tensor::kernels::IsaLevel::kScalar,
                                    /*has_override=*/false);
  }
};

TEST(QuantDeterminismTest, TopKIdenticalAcrossThreadsBlocksAndIsa) {
  IsaGuard guard;
  const auto store = MakeStore(31);
  const auto queries = MakeQueries(32);

  for (const TensorDtype dtype : {TensorDtype::kInt8, TensorDtype::kBf16}) {
    EmbeddingStore qstore = std::move(store.Quantize(dtype).value());
    std::vector<std::vector<TopKResult>> runs;
    for (const int threads : {1, 4, 7}) {
      for (const int64_t block_rows : {64, 256, 1024}) {
        for (const auto isa : {tensor::kernels::IsaLevel::kScalar,
                               tensor::kernels::IsaLevel::kAvx2}) {
          tensor::kernels::SetIsaOverride(isa);
          common::ThreadPool pool(threads);
          serve::TopKOptions options;
          options.pool = &pool;
          options.block_rows = block_rows;
          const serve::TopKRetriever retriever(&qstore, options);
          runs.push_back(retriever.Retrieve(queries.data(), kQueries, kTopK));
        }
      }
    }
    for (size_t r = 1; r < runs.size(); ++r) {
      ExpectSameResults(runs[0], runs[r],
                        std::string(nn::DtypeName(dtype)) + " config " +
                            std::to_string(r));
    }
  }
}

TEST(QuantDeterminismTest, ExactModeMatchesDequantizedBruteForce) {
  IsaGuard guard;
  const auto store = MakeStore(33);
  const auto queries = MakeQueries(34);
  EmbeddingStore qstore =
      std::move(store.Quantize(TensorDtype::kInt8).value());

  serve::TopKOptions exact;
  exact.rerank_candidates = -1;  // re-rank all rows in fp32
  const serve::TopKRetriever retriever(&qstore, exact);
  const auto reference =
      retriever.RetrieveBruteForce(queries.data(), kQueries, kTopK);
  for (const auto isa : {tensor::kernels::IsaLevel::kScalar,
                         tensor::kernels::IsaLevel::kAvx2}) {
    tensor::kernels::SetIsaOverride(isa);
    ExpectSameResults(retriever.Retrieve(queries.data(), kQueries, kTopK),
                      reference,
                      std::string("exact mode, ") +
                          tensor::kernels::IsaName(isa));
  }
}

TEST(QuantDeterminismTest, IvfOverInt8IdenticalAcrossShardsAndThreads) {
  IsaGuard guard;
  auto store = MakeStore(35);
  const auto queries = MakeQueries(36);
  EmbeddingStore qstore =
      std::move(store.Quantize(TensorDtype::kInt8).value());

  std::vector<std::vector<TopKResult>> runs;
  for (const int threads : {1, 4}) {
    common::ThreadPool pool(threads);
    for (const int shards : {1, 3, 4}) {
      for (const auto isa : {tensor::kernels::IsaLevel::kScalar,
                             tensor::kernels::IsaLevel::kAvx2}) {
        tensor::kernels::SetIsaOverride(isa);
        index::IvfOptions options;
        options.pool = &pool;
        options.num_shards = shards;
        options.num_centroids = 16;
        options.nprobe = 4;
        const index::IvfRetriever ivf(&qstore, options);
        runs.push_back(ivf.Retrieve(queries.data(), kQueries, kTopK));
      }
    }
  }
  for (size_t r = 1; r < runs.size(); ++r) {
    ExpectSameResults(runs[0], runs[r], "ivf config " + std::to_string(r));
  }
}

TEST(QuantDeterminismTest, IvfFullProbeExactRerankMatchesBruteForce) {
  IsaGuard guard;
  auto store = MakeStore(37);
  const auto queries = MakeQueries(38);
  EmbeddingStore qstore =
      std::move(store.Quantize(TensorDtype::kInt8).value());

  serve::TopKOptions exact;
  exact.rerank_candidates = -1;
  const serve::TopKRetriever brute(&qstore, exact);
  const auto reference =
      brute.RetrieveBruteForce(queries.data(), kQueries, kTopK);

  index::IvfOptions options;
  options.num_centroids = 16;
  options.num_shards = 3;
  options.rerank_candidates = -1;  // exact fp32 re-rank of every candidate
  const index::IvfRetriever ivf(&qstore, options);
  ExpectSameResults(
      ivf.RetrieveWithProbe(queries.data(), kQueries, kTopK,
                            ivf.num_centroids()),
      reference, "ivf full probe");
}

TEST(QuantDeterminismTest, RefinedRerankIdenticalAcrossThreadsAndIsa) {
  // Full-precision refinement fetches stage-2 rows from a checkpoint on
  // disk with pread, concurrently from every worker thread. The fetched
  // bytes are position-addressed and immutable, so refined results must
  // stay bit-identical across thread counts and ISA — and equal to the
  // in-memory snapshot-source run.
  IsaGuard guard;
  const auto store = MakeStore(41);
  const auto queries = MakeQueries(42);
  const std::string path = "/tmp/desalign_quant_determinism_" +
                           std::to_string(::getpid()) + ".dckpt";
  ASSERT_TRUE(store.Save(path).ok());
  auto opened = serve::CheckpointRowSource::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const serve::CheckpointRowSource file_source = std::move(opened).value();
  const serve::SnapshotRowSource memory_source(store.Snapshot());

  EmbeddingStore qstore =
      std::move(store.Quantize(TensorDtype::kInt8).value());
  serve::TopKOptions reference_options;
  reference_options.rerank_source = &memory_source;
  const serve::TopKRetriever reference_retriever(&qstore, reference_options);
  const auto reference =
      reference_retriever.Retrieve(queries.data(), kQueries, kTopK);

  for (const int threads : {1, 4}) {
    common::ThreadPool pool(threads);
    for (const auto isa : {tensor::kernels::IsaLevel::kScalar,
                           tensor::kernels::IsaLevel::kAvx2}) {
      tensor::kernels::SetIsaOverride(isa);
      serve::TopKOptions options;
      options.pool = &pool;
      options.rerank_source = &file_source;
      const serve::TopKRetriever retriever(&qstore, options);
      ExpectSameResults(retriever.Retrieve(queries.data(), kQueries, kTopK),
                        reference,
                        std::string("refined, ") +
                            tensor::kernels::IsaName(isa) + ", " +
                            std::to_string(threads) + " threads");
    }
  }
  std::remove(path.c_str());
}

TEST(QuantDeterminismTest, QuantizationItselfIsDeterministic) {
  // Two independent Quantize calls over the same fp32 table produce byte-
  // identical codes/scales — calibration has no hidden RNG or wall clock.
  const auto store = MakeStore(39);
  for (const TensorDtype dtype : {TensorDtype::kInt8, TensorDtype::kBf16}) {
    EmbeddingStore a = std::move(store.Quantize(dtype).value());
    EmbeddingStore b = std::move(store.Quantize(dtype).value());
    const auto sa = a.Snapshot();
    const auto sb = b.Snapshot();
    std::vector<float> scratch_a(kDim), scratch_b(kDim);
    for (int64_t i = 0; i < kRows; ++i) {
      const float* ra = sa.RowAsFloat(i, scratch_a.data());
      const float* rb = sb.RowAsFloat(i, scratch_b.data());
      for (int64_t j = 0; j < kDim; ++j) {
        ASSERT_EQ(ra[j], rb[j]) << "row " << i;
      }
    }
  }
}

}  // namespace
}  // namespace desalign
