// Crash-safety suite: a training run that is killed mid-flight and resumed
// from its rotating checkpoints must finish with bit-for-bit the same
// weights and metrics as an uninterrupted run of the same config, and the
// non-finite guards must keep a run alive through injected NaN epochs.
// The "kill" is the `train.epoch:stop@K` fault site, which returns from
// Fit at exactly the point a SIGKILL after the epoch's checkpoint would.

#include <unistd.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "align/fusion_model.h"
#include "align/metrics.h"
#include "common/fault_injection.h"
#include "kg/synthetic.h"
#include "obs/metrics.h"
#include "tensor/tensor.h"

namespace desalign {
namespace {

class CrashResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    common::FaultInjector::Global().Clear();
    dir_ = std::filesystem::temp_directory_path() /
           ("desalign_crash_resume_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    common::FaultInjector::Global().Clear();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::filesystem::path dir_;
};

kg::AlignedKgPair TinyData() {
  kg::SyntheticSpec spec;
  spec.num_entities = 60;
  spec.seed = 91;
  spec.seed_ratio = 0.3;
  return kg::GenerateSyntheticPair(spec);
}

align::FusionModelConfig TinyConfig() {
  align::FusionModelConfig cfg;
  cfg.name = "CrashResume";
  cfg.seed = 5;
  cfg.dim = 8;
  cfg.epochs = 8;
  return cfg;
}

struct RunArtifacts {
  std::vector<float> fused;
  std::vector<float> similarity;
  align::RankingMetrics metrics;
};

RunArtifacts Artifacts(align::FusionAlignModel& model,
                       const kg::AlignedKgPair& data) {
  RunArtifacts out;
  auto fused = model.FusedEmbeddings();
  out.fused.assign(fused->data().begin(), fused->data().end());
  auto sim = model.DecodeSimilarity(data);
  out.similarity.assign(sim->data().begin(), sim->data().end());
  out.metrics = align::MetricsFromSimilarity(*sim);
  return out;
}

// memcmp so the comparison is bit-exact (distinguishes -0.0f, sees NaNs).
void ExpectBitExact(const std::vector<float>& a, const std::vector<float>& b,
                    const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  ASSERT_FALSE(a.empty()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
      << what << ": interrupted+resumed run diverged from uninterrupted run";
}

TEST_F(CrashResumeTest, KillAndResumeIsBitExact) {
  const auto data = TinyData();

  // Reference: one uninterrupted run, no checkpointing at all.
  align::FusionAlignModel reference(TinyConfig());
  reference.Fit(data);
  const RunArtifacts expected = Artifacts(reference, data);

  // Interrupted run: checkpoints every 2 epochs, injected crash after the
  // 4th epoch (epoch 3, which the cadence just checkpointed).
  const std::string ckpt_dir = (dir_ / "ckpts").string();
  {
    align::FusionAlignModel first(TinyConfig());
    first.ConfigureCheckpointing(ckpt_dir, /*every=*/2, /*keep=*/3,
                                 /*resume=*/false);
    ASSERT_TRUE(
        common::FaultInjector::Global().Configure("train.epoch:stop@4").ok());
    first.Fit(data);
    common::FaultInjector::Global().Clear();
    // The crashed process's in-memory model is discarded; only the
    // checkpoint directory survives into the "new process" below.
  }

  align::FusionAlignModel resumed(TinyConfig());
  resumed.ConfigureCheckpointing(ckpt_dir, /*every=*/2, /*keep=*/3,
                                 /*resume=*/true);
  resumed.Fit(data);
  const RunArtifacts got = Artifacts(resumed, data);

  ExpectBitExact(got.fused, expected.fused, "fused embeddings");
  ExpectBitExact(got.similarity, expected.similarity, "decoded similarity");
  EXPECT_EQ(got.metrics.h_at_1, expected.metrics.h_at_1);
  EXPECT_EQ(got.metrics.h_at_10, expected.metrics.h_at_10);
  EXPECT_EQ(got.metrics.mrr, expected.metrics.mrr);
}

TEST_F(CrashResumeTest, ResumeWithEmptyDirTrainsFromScratch) {
  const auto data = TinyData();
  align::FusionAlignModel reference(TinyConfig());
  reference.Fit(data);
  const RunArtifacts expected = Artifacts(reference, data);

  align::FusionAlignModel fresh(TinyConfig());
  fresh.ConfigureCheckpointing((dir_ / "empty").string(), 2, 3,
                               /*resume=*/true);
  fresh.Fit(data);
  const RunArtifacts got = Artifacts(fresh, data);
  ExpectBitExact(got.fused, expected.fused, "fused embeddings");
}

TEST_F(CrashResumeTest, NonFiniteLossIsSkippedNotFatal) {
  auto& skips =
      obs::MetricsRegistry::Global().GetCounter("train.nonfinite_skips");
  skips.Reset();
  const auto data = TinyData();
  align::FusionAlignModel model(TinyConfig());
  // One injected NaN loss at the 2nd epoch; the guard must skip that
  // update and the run must still end with finite, usable embeddings.
  ASSERT_TRUE(
      common::FaultInjector::Global().Configure("train.loss:nan@2").ok());
  model.Fit(data);
  common::FaultInjector::Global().Clear();
  EXPECT_EQ(skips.value(), 1);
  const RunArtifacts got = Artifacts(model, data);
  for (float x : got.fused) ASSERT_TRUE(std::isfinite(x));
  for (float x : got.similarity) ASSERT_TRUE(std::isfinite(x));
}

TEST_F(CrashResumeTest, ConsecutiveBadEpochsRollBackToCheckpoint) {
  auto& skips =
      obs::MetricsRegistry::Global().GetCounter("train.nonfinite_skips");
  auto& rollbacks =
      obs::MetricsRegistry::Global().GetCounter("train.rollbacks");
  skips.Reset();
  rollbacks.Reset();
  const auto data = TinyData();
  align::FusionAlignModel model(TinyConfig());
  model.ConfigureCheckpointing((dir_ / "rollback").string(), /*every=*/2,
                               /*keep=*/3, /*resume=*/false);
  // Epochs 0-1 are clean (checkpoint lands at epoch 1); epochs 2-4 all
  // produce NaN losses, which exhausts max_bad_steps (3) and forces a
  // rollback to the epoch-1 checkpoint.
  ASSERT_TRUE(common::FaultInjector::Global()
                  .Configure("train.loss:nan@3;train.loss:nan@4;"
                             "train.loss:nan@5")
                  .ok());
  model.Fit(data);
  common::FaultInjector::Global().Clear();
  EXPECT_EQ(skips.value(), 3);
  EXPECT_EQ(rollbacks.value(), 1);
  const RunArtifacts got = Artifacts(model, data);
  for (float x : got.fused) ASSERT_TRUE(std::isfinite(x));
}

}  // namespace
}  // namespace desalign
