// Consolidated edge-case coverage across modules: unusual but legal
// configurations a downstream user can reach through the public API.

#include <filesystem>
#include <gtest/gtest.h>

#include "align/fusion_model.h"
#include "align/metrics.h"
#include "common/rng.h"
#include "core/desalign.h"
#include "kg/io.h"
#include "kg/synthetic.h"
#include "nn/layers.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace desalign {
namespace {

kg::AlignedKgPair TinyData(uint64_t seed = 301) {
  kg::SyntheticSpec spec;
  spec.num_entities = 60;
  spec.seed = seed;
  spec.seed_ratio = 0.3;
  return kg::GenerateSyntheticPair(spec);
}

TEST(EdgeCasesTest, SingleHeadSingleLayerGat) {
  common::Rng rng(1);
  nn::GatEncoder gat(8, /*heads=*/1, /*layers=*/1, rng);
  graph::Graph g(4, {{0, 1}, {2, 3}});
  auto edges = g.MessagePassingEdges(true);
  auto x = tensor::Tensor::Create(4, 8);
  tensor::FillNormal(*x, rng);
  auto y = gat.Forward(x, edges, 4);
  EXPECT_EQ(y->rows(), 4);
  EXPECT_EQ(y->cols(), 8);
}

TEST(EdgeCasesTest, GatWithoutSelfLoopsOnIsolatedNodeIsZero) {
  common::Rng rng(2);
  nn::GatLayer gat(4, 1, rng);
  graph::Graph g(3, {{0, 1}});  // node 2 isolated
  auto edges = g.MessagePassingEdges(/*add_self_loops=*/false);
  auto x = tensor::Tensor::Full(3, 4, 1.0f);
  auto y = gat.Forward(x, edges, 3);
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_EQ(y->At(2, j), 0.0f);  // no incoming messages
  }
}

TEST(EdgeCasesTest, MultiHeadCrossModalAttention) {
  common::Rng rng(3);
  nn::CrossModalAttention caw(8, 4, /*heads=*/2, rng);
  std::vector<tensor::TensorPtr> inputs;
  for (int m = 0; m < 4; ++m) {
    auto t = tensor::Tensor::Create(3, 8);
    tensor::FillNormal(*t, rng);
    inputs.push_back(t);
  }
  auto out = caw.Forward(inputs);
  EXPECT_EQ(out.fused[0]->cols(), 8);
  EXPECT_EQ(out.confidence->cols(), 4);
}

TEST(EdgeCasesTest, FusionModelWithOnlyGraphModality) {
  auto data = TinyData();
  align::FusionModelConfig cfg;
  cfg.dim = 8;
  cfg.epochs = 10;
  cfg.use_modality = {true, false, false, false};
  cfg.use_cross_modal_attention = false;  // single modality, no fusion need
  cfg.use_intra_modal_losses = false;
  align::FusionAlignModel model(cfg);
  auto r = model.Evaluate(data);
  EXPECT_GT(r.metrics.mrr, 0.03);  // structure-only is weak but works
}

TEST(EdgeCasesTest, CawWithTwoModalities) {
  auto data = TinyData(303);
  align::FusionModelConfig cfg;
  cfg.dim = 8;
  cfg.epochs = 10;
  cfg.use_modality = {false, true, true, false};  // relation + text only
  align::FusionAlignModel model(cfg);
  auto r = model.Evaluate(data);
  EXPECT_GT(r.metrics.mrr, 0.05);
}

TEST(EdgeCasesTest, DesalignOnFullyObservedData) {
  // No missing modality at all: propagation must not hurt.
  kg::SyntheticSpec spec;
  spec.num_entities = 80;
  spec.image_ratio = 1.0;
  spec.text_ratio = 1.0;
  spec.seed = 305;
  auto data = kg::GenerateSyntheticPair(spec);
  auto cfg = core::DesalignConfig::Default(5);
  cfg.base.dim = 8;
  cfg.base.epochs = 12;
  core::DesalignModel model(cfg);
  auto r = model.Evaluate(data);
  EXPECT_GT(r.metrics.h_at_1, 0.3);
}

TEST(EdgeCasesTest, MinimalSeedCount) {
  auto data = TinyData(307);
  data.test_pairs.insert(data.test_pairs.end(), data.train_pairs.begin() + 1,
                         data.train_pairs.end());
  data.train_pairs.resize(1);  // a single seed pair
  align::FusionModelConfig cfg;
  cfg.dim = 8;
  cfg.epochs = 5;
  align::FusionAlignModel model(cfg);
  model.Fit(data);  // must not crash with a 1-pair batch
  auto sim = model.DecodeSimilarity(data);
  EXPECT_EQ(sim->rows(), static_cast<int64_t>(data.test_pairs.size()));
}

TEST(EdgeCasesTest, TwoEntityGraphPropagation) {
  graph::Graph g(2, {{0, 1}});
  auto norm = g.NormalizedAdjacency();
  auto x = tensor::Tensor::FromData(2, 1, {1.0f, 0.0f});
  std::vector<bool> known = {true, false};
  auto solved = core::SemanticPropagation::SolveClosedForm(norm, x, known);
  EXPECT_GT(solved->At(1, 0), 0.0f);  // pulled toward its known neighbour
  auto states = core::SemanticPropagation::Run(norm, x, known, 50);
  EXPECT_NEAR(states.back()->At(1, 0), solved->At(1, 0), 1e-3);
}

TEST(EdgeCasesTest, SaveLoadWithSingleTestPair) {
  auto data = TinyData(309);
  data.test_pairs.resize(1);
  const auto dir =
      std::filesystem::temp_directory_path() / "desalign_edge_io";
  ASSERT_TRUE(kg::SaveDataset(data, dir.string()).ok());
  auto loaded = kg::LoadDataset(dir.string());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().test_pairs.size(), 1u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace desalign
