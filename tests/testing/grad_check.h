#ifndef DESALIGN_TESTS_TESTING_GRAD_CHECK_H_
#define DESALIGN_TESTS_TESTING_GRAD_CHECK_H_

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/tensor.h"

namespace desalign::testing {

/// Verifies analytic gradients of `fn` (a scalar-valued tensor program)
/// against central finite differences for every entry of every input.
/// `fn` must rebuild the graph from the inputs on each call.
inline void CheckGradients(
    const std::vector<tensor::TensorPtr>& inputs,
    const std::function<tensor::TensorPtr(void)>& fn, float eps = 1e-2f,
    float tol = 2e-2f) {
  for (const auto& in : inputs) {
    ASSERT_TRUE(in->requires_grad());
    in->ZeroGrad();
  }
  auto loss = fn();
  ASSERT_EQ(loss->rows(), 1);
  ASSERT_EQ(loss->cols(), 1);
  loss->Backward();

  for (size_t k = 0; k < inputs.size(); ++k) {
    auto& in = *inputs[k];
    ASSERT_TRUE(in.has_grad()) << "input " << k << " received no gradient";
    for (int64_t i = 0; i < in.size(); ++i) {
      const float original = in.data()[i];
      in.data()[i] = original + eps;
      const float plus = fn()->ScalarValue();
      in.data()[i] = original - eps;
      const float minus = fn()->ScalarValue();
      in.data()[i] = original;
      const float numeric = (plus - minus) / (2.0f * eps);
      const float analytic = in.grad()[i];
      const float scale =
          std::max(1.0f, std::max(std::fabs(numeric), std::fabs(analytic)));
      EXPECT_NEAR(analytic / scale, numeric / scale, tol)
          << "input " << k << " entry " << i << " analytic=" << analytic
          << " numeric=" << numeric;
    }
  }
}

}  // namespace desalign::testing

#endif  // DESALIGN_TESTS_TESTING_GRAD_CHECK_H_
