#include "obs/trace.h"

#include <thread>

#include <gtest/gtest.h>

namespace desalign::obs {
namespace {

// The span tree is process-global; each test starts from a clean slate.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetSpanTree(); }
};

TEST_F(TraceTest, NestedScopesBuildATree) {
  {
    TraceSpan outer("outer");
    {
      TraceSpan inner("inner");
    }
    {
      TraceSpan inner("inner");
    }
    TraceSpan sibling("sibling");
  }
  const auto roots = CollectSpanTree();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0].name, "outer");
  EXPECT_EQ(roots[0].count, 1);
  ASSERT_EQ(roots[0].children.size(), 2u);
  const SpanNodeSnapshot* inner = roots[0].Child("inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 2);
  const SpanNodeSnapshot* sibling = roots[0].Child("sibling");
  ASSERT_NE(sibling, nullptr);
  EXPECT_EQ(sibling->count, 1);
  EXPECT_EQ(roots[0].Child("missing"), nullptr);
}

TEST_F(TraceTest, RepeatedVisitsAccumulate) {
  for (int i = 0; i < 10; ++i) {
    TraceSpan span("loop");
  }
  const auto roots = CollectSpanTree();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0].count, 10);
  EXPECT_GE(roots[0].total_seconds, 0.0);
}

TEST_F(TraceTest, ParentTimeCoversChildTime) {
  {
    TraceSpan outer("outer");
    TraceSpan inner("inner");
    // Busy-wait a little so the timings are clearly nonzero.
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
    (void)sink;
  }
  const auto roots = CollectSpanTree();
  ASSERT_EQ(roots.size(), 1u);
  const SpanNodeSnapshot* inner = roots[0].Child("inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_GT(inner->total_seconds, 0.0);
  EXPECT_GE(roots[0].total_seconds, inner->total_seconds);
}

TEST_F(TraceTest, SpansOnOtherThreadsBecomeSeparateRoots) {
  {
    TraceSpan main_span("main_phase");
    std::thread worker([] {
      TraceSpan span("worker_phase");
    });
    worker.join();
  }
  const auto roots = CollectSpanTree();
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_EQ(roots[0].name, "main_phase");
  EXPECT_EQ(roots[1].name, "worker_phase");
  EXPECT_TRUE(roots[0].children.empty());
}

TEST_F(TraceTest, ResetClearsTheTree) {
  {
    TraceSpan span("phase");
  }
  ResetSpanTree();
  EXPECT_TRUE(CollectSpanTree().empty());
}

}  // namespace
}  // namespace desalign::obs
