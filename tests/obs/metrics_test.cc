#include "obs/metrics.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace desalign::obs {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge g;
  g.Set(1.5);
  g.Set(-2.25);
  EXPECT_DOUBLE_EQ(g.value(), -2.25);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(HistogramTest, ExponentialBucketEdges) {
  const auto edges = Histogram::ExponentialBuckets(1.0, 2.0, 4);
  ASSERT_EQ(edges.size(), 4u);
  EXPECT_DOUBLE_EQ(edges[0], 1.0);
  EXPECT_DOUBLE_EQ(edges[3], 8.0);
}

TEST(HistogramTest, EmptySnapshotIsZero) {
  Histogram h;
  const auto snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0);
  EXPECT_DOUBLE_EQ(snap.sum, 0.0);
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, 0.0);
  EXPECT_DOUBLE_EQ(snap.mean, 0.0);
  EXPECT_DOUBLE_EQ(snap.p50, 0.0);
  EXPECT_DOUBLE_EQ(snap.p99, 0.0);
}

TEST(HistogramTest, SingleSampleQuantilesAreExact) {
  Histogram h;
  h.Record(12.34);
  const auto snap = h.Snapshot();
  EXPECT_EQ(snap.count, 1);
  EXPECT_DOUBLE_EQ(snap.min, 12.34);
  EXPECT_DOUBLE_EQ(snap.max, 12.34);
  EXPECT_DOUBLE_EQ(snap.p50, 12.34);
  EXPECT_DOUBLE_EQ(snap.p95, 12.34);
  EXPECT_DOUBLE_EQ(snap.p99, 12.34);
}

TEST(HistogramTest, DuplicateSamplesQuantilesAreExact) {
  Histogram h;
  for (int i = 0; i < 500; ++i) h.Record(0.125);
  const auto snap = h.Snapshot();
  EXPECT_DOUBLE_EQ(snap.p50, 0.125);
  EXPECT_DOUBLE_EQ(snap.p99, 0.125);
  EXPECT_DOUBLE_EQ(snap.mean, 0.125);
}

TEST(HistogramTest, QuantilesWithinBucketResolution) {
  Histogram h;  // default buckets, ~10% relative width
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<double>(i));
  const auto snap = h.Snapshot();
  EXPECT_EQ(snap.count, 1000);
  EXPECT_DOUBLE_EQ(snap.max, 1000.0);
  EXPECT_NEAR(snap.p50, 500.0, 50.0);
  EXPECT_NEAR(snap.p95, 950.0, 95.0);
  EXPECT_NEAR(snap.p99, 990.0, 99.0);
}

TEST(HistogramTest, OverflowBucketCatchesValuesAboveLastEdge) {
  Histogram h(std::vector<double>{1.0, 2.0});
  h.Record(0.5);
  h.Record(1.5);
  h.Record(100.0);
  const auto snap = h.Snapshot();
  ASSERT_EQ(snap.counts.size(), 3u);
  EXPECT_EQ(snap.counts[0], 1);
  EXPECT_EQ(snap.counts[1], 1);
  EXPECT_EQ(snap.counts[2], 1);
  EXPECT_DOUBLE_EQ(snap.max, 100.0);
  // The top quantile interpolates inside the overflow bucket using the
  // observed max as its upper edge.
  EXPECT_LE(snap.p99, 100.0);
  EXPECT_GT(snap.p99, 2.0);
}

TEST(HistogramTest, ResetClearsInPlace) {
  Histogram h;
  h.Record(3.0);
  h.Reset();
  const auto snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0);
  EXPECT_DOUBLE_EQ(snap.max, 0.0);
  h.Record(4.0);
  EXPECT_EQ(h.count(), 1);
}

TEST(SeriesTest, PreservesRecordingOrder) {
  Series s;
  s.Append(3.0);
  s.Append(1.0);
  s.Append(2.0);
  EXPECT_EQ(s.size(), 3);
  const auto values = s.values();
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values[0], 3.0);
  EXPECT_DOUBLE_EQ(values[1], 1.0);
  EXPECT_DOUBLE_EQ(values[2], 2.0);
  s.Reset();
  EXPECT_EQ(s.size(), 0);
}

TEST(MetricsRegistryTest, FindOrCreateReturnsStableReferences) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("x");
  Counter& b = registry.GetCounter("x");
  EXPECT_EQ(&a, &b);
  a.Increment();
  EXPECT_EQ(b.value(), 1);
  // References survive Reset and further creations.
  registry.GetCounter("y");
  registry.ResetAll();
  EXPECT_EQ(a.value(), 0);
  a.Increment(5);
  EXPECT_EQ(registry.GetCounter("x").value(), 5);
}

TEST(MetricsRegistryTest, CollectSeesEveryKind) {
  MetricsRegistry registry;
  registry.GetCounter("c").Increment(3);
  registry.GetGauge("g").Set(2.5);
  registry.GetHistogram("h").Record(1.0);
  registry.GetSeries("s").Append(9.0);
  const auto snap = registry.Collect();
  EXPECT_EQ(snap.counters.at("c"), 3);
  EXPECT_DOUBLE_EQ(snap.gauges.at("g"), 2.5);
  EXPECT_EQ(snap.histograms.at("h").count, 1);
  ASSERT_EQ(snap.series.at("s").size(), 1u);
  EXPECT_DOUBLE_EQ(snap.series.at("s")[0], 9.0);
}

TEST(MetricsRegistryTest, DetailFlagDefaultsOff) {
  MetricsRegistry registry;
  EXPECT_FALSE(registry.detail_enabled());
  registry.set_detail_enabled(true);
  EXPECT_TRUE(registry.detail_enabled());
  registry.set_detail_enabled(false);
  EXPECT_FALSE(registry.detail_enabled());
}

TEST(MetricsRegistryTest, GlobalIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

}  // namespace
}  // namespace desalign::obs
