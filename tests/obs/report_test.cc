#include "obs/report.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "common/fault_injection.h"

namespace desalign::obs {
namespace {

class ReportTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetSpanTree(); }

  MetricsRegistry registry_;

  RunReport MakeReport() {
    registry_.GetCounter("train.epochs").Increment(5);
    registry_.GetGauge("train.loss").Set(0.25);
    registry_.GetHistogram("serve.latency_ms").Record(2.0);
    registry_.GetSeries("propagation.dirichlet_energy").Append(1.5);
    registry_.GetSeries("propagation.dirichlet_energy").Append(0.75);
    {
      TraceSpan train("train");
      TraceSpan epoch("epoch");
    }
    return RunReport::Collect(registry_);
  }

  static std::string TempPath(const std::string& name) {
    return (std::filesystem::temp_directory_path() / name).string();
  }
};

TEST_F(ReportTest, JsonContainsEveryKind) {
  const std::string json = MakeReport().ToJson();
  EXPECT_NE(json.find("\"counters\":{\"train.epochs\":5"), std::string::npos);
  EXPECT_NE(json.find("\"train.loss\":0.25"), std::string::npos);
  EXPECT_NE(json.find("\"serve.latency_ms\":{\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"propagation.dirichlet_energy\":[1.5,0.75]"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"train\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"epoch\""), std::string::npos);
  // Only the non-empty histogram bucket is listed.
  EXPECT_NE(json.find("\"buckets\":[{\"le\":"), std::string::npos);
}

TEST_F(ReportTest, JsonHandlesNonFiniteGauges) {
  registry_.GetGauge("bad").Set(std::numeric_limits<double>::infinity());
  const std::string json = RunReport::Collect(registry_).ToJson();
  EXPECT_NE(json.find("\"bad\":null"), std::string::npos);
}

TEST_F(ReportTest, JsonEscapesNames) {
  registry_.GetCounter("weird\"name\\with\nstuff").Increment();
  const std::string json = RunReport::Collect(registry_).ToJson();
  EXPECT_NE(json.find("\"weird\\\"name\\\\with\\nstuff\""), std::string::npos);
}

TEST_F(ReportTest, CsvHasHeaderAndAllKinds) {
  const std::string csv = MakeReport().ToCsv();
  std::istringstream lines(csv);
  std::string first;
  std::getline(lines, first);
  EXPECT_EQ(first, "kind,name,field,value");
  EXPECT_NE(csv.find("counter,train.epochs,value,5"), std::string::npos);
  EXPECT_NE(csv.find("gauge,train.loss,value,0.25"), std::string::npos);
  EXPECT_NE(csv.find("histogram,serve.latency_ms,count,1"),
            std::string::npos);
  EXPECT_NE(csv.find("series,propagation.dirichlet_energy,0,1.5"),
            std::string::npos);
  EXPECT_NE(csv.find("series,propagation.dirichlet_energy,1,0.75"),
            std::string::npos);
  EXPECT_NE(csv.find("span,train,count,1"), std::string::npos);
  EXPECT_NE(csv.find("span,train/epoch,count,1"), std::string::npos);
}

TEST_F(ReportTest, WriteToDispatchesOnExtension) {
  const RunReport report = MakeReport();
  const std::string json_path = TempPath("desalign_report_test.json");
  const std::string csv_path = TempPath("desalign_report_test.csv");
  ASSERT_TRUE(report.WriteTo(json_path).ok());
  ASSERT_TRUE(report.WriteTo(csv_path).ok());
  std::ifstream json_in(json_path);
  std::string json((std::istreambuf_iterator<char>(json_in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(json.front(), '{');
  std::ifstream csv_in(csv_path);
  std::string csv_first;
  std::getline(csv_in, csv_first);
  EXPECT_EQ(csv_first, "kind,name,field,value");
  std::remove(json_path.c_str());
  std::remove(csv_path.c_str());
}

TEST_F(ReportTest, WriteToFaultSiteSurfacesAsStatus) {
  ASSERT_TRUE(
      common::FaultInjector::Global().Configure("report.write:fail").ok());
  const std::string path = TempPath("desalign_report_fault.json");
  EXPECT_FALSE(MakeReport().WriteTo(path).ok());
  common::FaultInjector::Global().Clear();
  EXPECT_TRUE(MakeReport().WriteTo(path).ok());
  std::remove(path.c_str());
}

TEST_F(ReportTest, WriteToRejectsUnknownExtension) {
  const auto status = MakeReport().WriteTo(TempPath("report.txt"));
  EXPECT_FALSE(status.ok());
}

TEST_F(ReportTest, WriteToFailsOnUnwritablePath) {
  const auto status =
      MakeReport().WriteTo("/nonexistent-dir/deeper/report.json");
  EXPECT_FALSE(status.ok());
}

}  // namespace
}  // namespace desalign::obs
