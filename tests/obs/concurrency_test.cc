// Contention tests for the obs primitives. These are the tests the
// `sanitizer` CTest label exists for: under DESALIGN_SANITIZE=thread they
// prove Record/Increment/Collect and concurrent span construction are
// race-free, and in a normal build they check no updates are lost.
#include <atomic>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace desalign::obs {
namespace {

constexpr int kThreads = 8;
constexpr int kPerThread = 5000;

void RunOnThreads(const std::function<void(int)>& body) {
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] { body(t); });
  }
  for (auto& w : workers) w.join();
}

TEST(ObsConcurrencyTest, CounterLosesNoIncrements) {
  Counter counter;
  RunOnThreads([&](int) {
    for (int i = 0; i < kPerThread; ++i) counter.Increment();
  });
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(ObsConcurrencyTest, HistogramLosesNoRecordsUnderContention) {
  Histogram hist;
  RunOnThreads([&](int t) {
    for (int i = 0; i < kPerThread; ++i) {
      hist.Record(static_cast<double>(t + 1));
    }
  });
  const auto snap = hist.Snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  // Sum of t+1 over threads, kPerThread each.
  const double expected_sum =
      kPerThread * (kThreads * (kThreads + 1)) / 2.0;
  EXPECT_DOUBLE_EQ(snap.sum, expected_sum);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, static_cast<double>(kThreads));
  int64_t bucket_total = 0;
  for (int64_t c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST(ObsConcurrencyTest, RegistryLookupsRaceSafely) {
  MetricsRegistry registry;
  RunOnThreads([&](int t) {
    for (int i = 0; i < 500; ++i) {
      registry.GetCounter("shared").Increment();
      registry.GetCounter("own." + std::to_string(t)).Increment();
      registry.GetHistogram("lat").Record(1.0);
      registry.GetGauge("g").Set(static_cast<double>(i));
    }
  });
  const auto snap = registry.Collect();
  EXPECT_EQ(snap.counters.at("shared"), kThreads * 500);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(snap.counters.at("own." + std::to_string(t)), 500);
  }
  EXPECT_EQ(snap.histograms.at("lat").count, kThreads * 500);
}

TEST(ObsConcurrencyTest, CollectWhileRecordingIsSafe) {
  MetricsRegistry registry;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      const auto snap = registry.Collect();
      if (snap.histograms.count("h")) {
        EXPECT_GE(snap.histograms.at("h").count, 0);
      }
    }
  });
  RunOnThreads([&](int) {
    for (int i = 0; i < kPerThread; ++i) registry.GetHistogram("h").Record(2.0);
  });
  stop.store(true);
  reader.join();
  EXPECT_EQ(registry.Collect().histograms.at("h").count,
            kThreads * kPerThread);
}

TEST(ObsConcurrencyTest, SeriesAppendsFromManyThreads) {
  Series series;
  RunOnThreads([&](int) {
    for (int i = 0; i < 1000; ++i) series.Append(1.0);
  });
  EXPECT_EQ(series.size(), kThreads * 1000);
}

TEST(ObsConcurrencyTest, SpansOnManyThreadsAggregateSafely) {
  ResetSpanTree();
  RunOnThreads([&](int) {
    for (int i = 0; i < 200; ++i) {
      TraceSpan outer("thread_phase");
      TraceSpan inner("inner");
    }
  });
  const auto roots = CollectSpanTree();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0].name, "thread_phase");
  EXPECT_EQ(roots[0].count, kThreads * 200);
  const SpanNodeSnapshot* inner = roots[0].Child("inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, kThreads * 200);
  ResetSpanTree();
}

}  // namespace
}  // namespace desalign::obs
