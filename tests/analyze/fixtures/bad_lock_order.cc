// Fixture: seeded two-mutex inverted-order deadlock. Transfer() acquires
// source before target; Audit() acquires target before source. Two
// threads entering from different sides block forever. The analyzer
// anchors the cycle at the lexically smallest witness edge (the second
// acquisition inside Transfer()).
#include "common/mutex.h"

namespace desalign::fixture {

class Ledger {
 public:
  void Transfer();
  void Audit();

 private:
  common::Mutex source_mu_;
  common::Mutex target_mu_;
};

void Ledger::Transfer() {
  common::MutexLock source(source_mu_);
  common::MutexLock target(target_mu_);  // ANALYZE-EXPECT: lock-order
}

void Ledger::Audit() {
  common::MutexLock target(target_mu_);
  common::MutexLock source(source_mu_);
}

}  // namespace desalign::fixture
