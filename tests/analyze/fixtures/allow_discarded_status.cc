// Fixture: a dropped fallible result suppressed by a pragma on its
// line. Real code should prefer the explicit (void) cast, which states
// the intent in the language instead of in a comment.
#include "common/status.h"

namespace desalign::fixture {

struct Store {
  common::Status Reload(const char* path);
};

void DropDeliberately(Store& store) {
  store.Reload("warmup.bin");  // desalign-analyze: allow(discarded-status) fixture proves per-line suppression
}

}  // namespace desalign::fixture
