// Fixture: the bad_lock_order.cc cycle, suppressed by a pragma on the
// anchor line (the lexically smallest witness edge). Real code should
// fix the order or use an [[allow_cycle]] manifest entry instead.
#include "common/mutex.h"

namespace desalign::fixture {

class Ledger {
 public:
  void Transfer();
  void Audit();

 private:
  common::Mutex source_mu_;
  common::Mutex target_mu_;
};

void Ledger::Transfer() {
  common::MutexLock source(source_mu_);
  common::MutexLock target(target_mu_);  // desalign-analyze: allow(lock-order) fixture proves per-line suppression
}

void Ledger::Audit() {
  common::MutexLock target(target_mu_);
  common::MutexLock source(source_mu_);
}

}  // namespace desalign::fixture
