// Fixture: same two mutexes as bad_lock_order.cc, but both paths agree
// on the order (source before target), so the lock graph is acyclic.
#include "common/mutex.h"

namespace desalign::fixture {

class Ledger {
 public:
  void Transfer();
  void Audit();

 private:
  common::Mutex source_mu_;
  common::Mutex target_mu_;
};

void Ledger::Transfer() {
  common::MutexLock source(source_mu_);
  common::MutexLock target(target_mu_);
}

void Ledger::Audit() {
  common::MutexLock source(source_mu_);
  common::MutexLock target(target_mu_);
}

}  // namespace desalign::fixture
