// Fixture: a pragma allows only the rule it names. This line drops a
// fallible result but its pragma names `layering`, so discarded-status
// still fires — suppression is per-rule, not per-line-blanket.
#include "common/status.h"

namespace desalign::fixture {

struct Store {
  common::Status Reload(const char* path);
};

void WrongPragma(Store& store) {
  store.Reload("embeddings.bin");  // desalign-analyze: allow(layering) ANALYZE-EXPECT: discarded-status
}

}  // namespace desalign::fixture
