// Fixture: seeded dropped results of fallible APIs. Each bare
// expression-statement below throws away the only record of failure.
#include "common/status.h"

namespace desalign::fixture {

struct Store {
  common::Status Reload(const char* path);
  common::Result<int> Load(const char* path);
};

struct Queue {
  int Submit(int query);
};

void DropEverything(Store& store, Queue& queue) {
  store.Reload("embeddings.bin");  // ANALYZE-EXPECT: discarded-status
  store.Load("checkpoint.bin");    // ANALYZE-EXPECT: discarded-status
  queue.Submit(42);                // ANALYZE-EXPECT: discarded-status
}

}  // namespace desalign::fixture
