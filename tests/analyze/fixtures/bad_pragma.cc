// Fixture: a pragma naming a rule the analyzer does not have. Unknown
// rule names are reported, never silently ignored — a typo in a pragma
// must not look like a suppression.
#include "common/status.h"

namespace desalign::fixture {

void Fine();  // desalign-analyze: allow(no-such-rule) ANALYZE-EXPECT: bad-pragma

}  // namespace desalign::fixture
