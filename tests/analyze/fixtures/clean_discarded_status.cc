// Fixture: every fallible result is consumed — assigned, returned,
// branched on, chained, passed as an argument, or discarded with the
// sanctioned explicit (void) cast.
#include "common/status.h"

namespace desalign::fixture {

struct Store {
  common::Status Reload(const char* path);
  common::Result<int> Load(const char* path);
};

void Consume(common::Status s);

common::Status UseEverything(Store& store) {
  common::Status st = store.Reload("embeddings.bin");
  if (!store.Reload("embeddings.bin").ok()) {
    return st;
  }
  Consume(store.Reload("embeddings.bin"));
  (void)store.Reload("best-effort.bin");
  auto loaded = store.Load("checkpoint.bin");
  (void)loaded;
  return store.Reload("embeddings.bin");
}

}  // namespace desalign::fixture
