// Fixture: seeded serve→align layering breach. The serve module must
// stay independent of the training stack; this include crosses the DAG
// in tools/analyze/layering.toml.
#include "align/semantic_consistency.h"  // ANALYZE-EXPECT: layering
#include "common/status.h"

namespace desalign::serve {

void UseAlignInternals() {}

}  // namespace desalign::serve
