// Fixture: a serve header declaring a future-returning API without
// [[nodiscard]]. A dropped future silently loses its ServeStatus
// outcome, so the declaration side must carry the attribute.
#ifndef TESTS_ANALYZE_FIXTURES_SRC_SERVE_BAD_FUTURE_NODISCARD_H_
#define TESTS_ANALYZE_FIXTURES_SRC_SERVE_BAD_FUTURE_NODISCARD_H_

#include <future>
#include <vector>

namespace desalign::serve {

struct TopKResult;

class FixtureQueue {
 public:
  std::future<TopKResult> Submit(std::vector<float> query);  // ANALYZE-EXPECT: discarded-status
};

}  // namespace desalign::serve

#endif  // TESTS_ANALYZE_FIXTURES_SRC_SERVE_BAD_FUTURE_NODISCARD_H_
