// Fixture: the same future-returning serve API as
// bad_future_nodiscard.h, correctly declared [[nodiscard]].
#ifndef TESTS_ANALYZE_FIXTURES_SRC_SERVE_CLEAN_FUTURE_NODISCARD_H_
#define TESTS_ANALYZE_FIXTURES_SRC_SERVE_CLEAN_FUTURE_NODISCARD_H_

#include <future>
#include <vector>

namespace desalign::serve {

struct TopKResult;

class FixtureQueue {
 public:
  [[nodiscard]] std::future<TopKResult> Submit(std::vector<float> query);
};

}  // namespace desalign::serve

#endif  // TESTS_ANALYZE_FIXTURES_SRC_SERVE_CLEAN_FUTURE_NODISCARD_H_
