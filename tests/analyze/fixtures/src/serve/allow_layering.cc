// Fixture: the serve→align breach of bad_layering.cc, suppressed by a
// pragma on the include line. Real code should move the shared piece
// down a layer or amend layering.toml in review instead.
#include "align/semantic_consistency.h"  // desalign-analyze: allow(layering) fixture proves per-line suppression

namespace desalign::serve {

void UseAlignInternals() {}

}  // namespace desalign::serve
