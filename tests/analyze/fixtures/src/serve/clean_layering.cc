// Fixture: serve including only its declared dependencies (common, nn,
// obs, tensor) plus its own headers — all DAG-legal.
#include "common/status.h"
#include "nn/embedding.h"
#include "obs/metrics.h"
#include "serve/batch_queue.h"
#include "tensor/tensor.h"

namespace desalign::serve {

void UseDeclaredDeps() {}

}  // namespace desalign::serve
