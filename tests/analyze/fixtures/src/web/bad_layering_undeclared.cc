// Fixture: a src/ module that tools/analyze/layering.toml does not
// declare. Every module include from it is flagged — new modules must
// be added to the DAG before they can depend on anything.
#include "common/status.h"  // ANALYZE-EXPECT: layering

namespace desalign::web {

void NewModule() {}

}  // namespace desalign::web
