#!/usr/bin/env python3
"""CTest driver for desalign-analyze (label: analyze).

Two modes:

  --fixtures   every tests/analyze/fixtures/ file is scanned
               individually: bad_* files must produce exactly the
               findings declared by their `ANALYZE-EXPECT: <rule>`
               marker lines (and exit 1); clean_* / allow_* files must
               produce none (and exit 0); cross_allow.cc proves a
               pragma suppresses only its named rule; bad_pragma.cc
               proves unknown pragma rules are reported. Also checks
               the exit-2 usage-error contract.

  --tree       the zero-finding gate: analyzing src/ and tests/ of the
               real repository must come back clean.
"""

import argparse
import os
import re
import subprocess
import sys

THIS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(THIS_DIR))
ANALYZER = os.path.join(REPO_ROOT, "tools", "analyze",
                        "desalign_analyze.py")
FIXTURE_DIR = os.path.join(THIS_DIR, "fixtures")

FINDING_RE = re.compile(r"^(?P<path>[^:]+):(?P<line>\d+): \[(?P<rule>[a-z-]+)\]")
EXPECT_RE = re.compile(r"ANALYZE-EXPECT:\s*([a-z-]+)")

failures = []


def check(cond, message):
    if cond:
        print(f"ok: {message}")
    else:
        print(f"FAIL: {message}")
        failures.append(message)


def run_analyzer(args):
    proc = subprocess.run(
        [sys.executable, ANALYZER, "--root", REPO_ROOT] + args,
        capture_output=True, text=True)
    findings = []
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            findings.append((m.group("path"), int(m.group("line")),
                             m.group("rule")))
    return proc.returncode, findings


def expected_findings(path):
    expected = []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            for rule in EXPECT_RE.findall(line):
                expected.append((lineno, rule))
    return expected


def fixture_files():
    found = []
    for dirpath, dirnames, filenames in os.walk(FIXTURE_DIR):
        dirnames.sort()
        for name in sorted(filenames):
            if name.endswith((".cc", ".h")):
                found.append(os.path.join(dirpath, name))
    return found


def run_fixture_checks():
    files = fixture_files()
    check(len(files) >= 12, f"fixture corpus present ({len(files)} files)")
    rules_proven_firing = set()
    rules_proven_suppressed = set()

    for path in files:
        rel = os.path.relpath(path, REPO_ROOT)
        name = os.path.basename(path)
        exit_code, findings = run_analyzer([rel])
        expected = expected_findings(path)
        got = sorted((line, rule) for (_, line, rule) in findings)

        if name.startswith(("clean_", "allow_")):
            check(exit_code == 0 and not findings,
                  f"{name}: no findings, exit 0 "
                  f"(got exit {exit_code}, {findings})")
            if name.startswith("allow_"):
                rule = name[len("allow_"):].split(".")[0].replace("_", "-")
                rules_proven_suppressed.add(rule)
        else:
            check(exit_code == 1,
                  f"{name}: exit 1 on findings (got {exit_code})")
            check(got == sorted(expected),
                  f"{name}: exact findings {sorted(expected)} "
                  f"(got {got})")
            for _, rule in expected:
                rules_proven_firing.add(rule)

    # Every allow_<rule> fixture must have a bad_ proof that the same rule
    # fires without the pragma — otherwise "suppressed" is vacuous.
    unproven = rules_proven_suppressed - rules_proven_firing
    check(not unproven,
          f"every suppressed rule also proven to fire (missing: {unproven})")

    # All analyzer rules covered both ways (bad-pragma has no allow form:
    # a pragma cannot allowlist pragma abuse).
    product_rules = {"lock-order", "layering", "discarded-status"}
    check(product_rules <= rules_proven_firing,
          f"all rules fire (missing: {product_rules - rules_proven_firing})")
    check(product_rules <= rules_proven_suppressed,
          "all rules suppressible via their named pragma "
          f"(missing: {product_rules - rules_proven_suppressed})")
    check("bad-pragma" in rules_proven_firing,
          "unknown pragma rule names are reported")

    exit_code, _ = run_analyzer(["no/such/path.cc"])
    check(exit_code == 2, f"usage error exits 2 (got {exit_code})")

    exit_code, _ = run_analyzer(["--passes", "no-such-pass",
                                 "tests/analyze/fixtures/cross_allow.cc"])
    check(exit_code == 2, f"unknown pass exits 2 (got {exit_code})")


def run_tree_check():
    exit_code, findings = run_analyzer([])  # default: src tests
    for path, line, rule in findings:
        print(f"  tree finding: {path}:{line} [{rule}]")
    check(exit_code == 0 and not findings,
          f"whole-tree analysis clean (exit {exit_code}, "
          f"{len(findings)} findings)")


def main():
    parser = argparse.ArgumentParser()
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--fixtures", action="store_true")
    mode.add_argument("--tree", action="store_true")
    args = parser.parse_args()

    if args.fixtures:
        run_fixture_checks()
    else:
        run_tree_check()

    if failures:
        print(f"\n{len(failures)} check(s) failed")
        return 1
    print("\nall analyze checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
