#include "index/kmeans.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "serve/embedding_store.h"

namespace desalign::index {
namespace {

serve::EmbeddingStore RandomStore(int64_t rows, int64_t dim, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<float> data(static_cast<size_t>(rows * dim));
  for (auto& v : data) v = rng.UniformF(-1.0f, 1.0f);
  return serve::EmbeddingStore::FromRows(rows, dim, std::move(data));
}

TEST(KMeansTest, CentroidCountClampedToRows) {
  const auto store = RandomStore(5, 4, 1);
  KMeansOptions options;
  options.num_centroids = 64;
  const auto model = TrainKMeans(store.Snapshot(), options);
  EXPECT_EQ(model.num_centroids, 5);
  EXPECT_EQ(model.dim, 4);
  EXPECT_EQ(model.centroids.size(), 20u);
}

TEST(KMeansTest, EmptyTableYieldsEmptyModel) {
  const serve::EmbeddingStore store;
  const auto model = TrainKMeans(store.Snapshot(), KMeansOptions{});
  EXPECT_EQ(model.num_centroids, 0);
  EXPECT_TRUE(model.centroids.empty());
}

TEST(KMeansTest, BitIdenticalAcrossThreadCounts) {
  // The assignment step is the only parallel piece; it is per-row
  // independent and the update reduction is serial in row order, so the
  // trained centroids must be byte-equal no matter the pool size.
  const auto store = RandomStore(300, 9, 7);
  std::vector<float> reference;
  for (const int threads : {1, 2, 5}) {
    common::ThreadPool pool(threads);
    KMeansOptions options;
    options.num_centroids = 17;
    options.iterations = 6;
    options.pool = &pool;
    const auto model = TrainKMeans(store.Snapshot(), options);
    ASSERT_EQ(model.num_centroids, 17);
    if (reference.empty()) {
      reference = model.centroids;
    } else {
      EXPECT_EQ(model.centroids, reference) << threads << " threads";
    }
  }
}

TEST(KMeansTest, SampledTrainingIsDeterministic) {
  const auto store = RandomStore(500, 6, 11);
  KMeansOptions options;
  options.num_centroids = 8;
  options.sample_rows = 128;
  const auto a = TrainKMeans(store.Snapshot(), options);
  const auto b = TrainKMeans(store.Snapshot(), options);
  EXPECT_EQ(a.centroids, b.centroids);
  // A different seed must (generically) pick different initial rows.
  options.seed = 999;
  const auto c = TrainKMeans(store.Snapshot(), options);
  EXPECT_NE(a.centroids, c.centroids);
}

TEST(KMeansTest, NearestCentroidTiesBreakTowardSmallerId) {
  // Two identical centroids: every query ties exactly; id 0 must win.
  KMeansModel model;
  model.num_centroids = 3;
  model.dim = 2;
  model.centroids = {1.0f, 0.0f, 1.0f, 0.0f, 0.0f, 1.0f};
  const std::vector<float> q = {1.0f, 0.0f};
  EXPECT_EQ(NearestCentroid(model, q.data()), 0);
  const std::vector<float> r = {0.0f, 1.0f};
  EXPECT_EQ(NearestCentroid(model, r.data()), 2);
}

TEST(KMeansTest, AssignmentPartitionsAllRows) {
  const auto store = RandomStore(120, 5, 3);
  KMeansOptions options;
  options.num_centroids = 10;
  const auto model = TrainKMeans(store.Snapshot(), options);
  const auto snap = store.Snapshot();
  std::vector<int64_t> counts(10, 0);
  for (int64_t r = 0; r < snap.size(); ++r) {
    const int64_t c = NearestCentroid(model, snap.row(r));
    ASSERT_GE(c, 0);
    ASSERT_LT(c, 10);
    ++counts[static_cast<size_t>(c)];
  }
  int64_t total = 0;
  for (const int64_t c : counts) total += c;
  EXPECT_EQ(total, 120);
}

TEST(KMeansTest, MoreCentroidsThanDistinctRowsStaysFinite) {
  // 4 distinct rows duplicated 10x with k=8: some cells go empty and must
  // keep their initial centroid instead of collapsing to NaN.
  std::vector<float> data;
  for (int rep = 0; rep < 10; ++rep) {
    for (const float base : {1.0f, 2.0f, 3.0f, 4.0f}) {
      data.push_back(base);
      data.push_back(-base);
    }
  }
  const auto store = serve::EmbeddingStore::FromRows(40, 2, std::move(data));
  KMeansOptions options;
  options.num_centroids = 8;
  const auto model = TrainKMeans(store.Snapshot(), options);
  EXPECT_EQ(model.num_centroids, 8);
  for (const float v : model.centroids) EXPECT_TRUE(std::isfinite(v));
}

}  // namespace
}  // namespace desalign::index
