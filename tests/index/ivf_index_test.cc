#include "index/ivf.h"

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "serve/embedding_store.h"
#include "serve/topk.h"

namespace desalign::index {
namespace {

using serve::EmbeddingStore;
using serve::TopKResult;

std::vector<float> RandomRows(int64_t rows, int64_t dim, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<float> data(static_cast<size_t>(rows * dim));
  for (auto& v : data) v = rng.UniformF(-1.0f, 1.0f);
  return data;
}

/// Clustered rows: `clusters` random unit centers plus small noise. IVF
/// recall statements only mean something on data with cluster structure.
std::vector<float> ClusteredRows(int64_t rows, int64_t dim, int64_t clusters,
                                 uint64_t seed) {
  common::Rng rng(seed);
  std::vector<float> centers(static_cast<size_t>(clusters * dim));
  for (auto& v : centers) v = rng.UniformF(-1.0f, 1.0f);
  serve::L2NormalizeRows(centers.data(), clusters, dim);
  std::vector<float> data(static_cast<size_t>(rows * dim));
  for (int64_t i = 0; i < rows; ++i) {
    const float* center = centers.data() + rng.UniformInt(clusters) * dim;
    for (int64_t j = 0; j < dim; ++j) {
      data[static_cast<size_t>(i * dim + j)] =
          center[j] + 0.2f * rng.UniformF(-1.0f, 1.0f);
    }
  }
  return data;
}

void ExpectSameResults(const std::vector<TopKResult>& actual,
                       const std::vector<TopKResult>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].ids, expected[i].ids) << "query " << i;
    EXPECT_EQ(actual[i].scores, expected[i].scores) << "query " << i;
  }
}

TEST(IvfRetrieverTest, FullProbeBitExactVsBruteForceAcrossShardsAndThreads) {
  // The acceptance oracle: nprobe = num_centroids scans every inverted
  // list, so the candidate set is the whole table and the shared total
  // order forces byte-identical output — per thread count AND shard count.
  const int64_t dim = 16;
  const int64_t n = 500;
  auto store = EmbeddingStore::FromRows(n, dim, RandomRows(n, dim, 3));
  serve::TopKRetriever brute(&store);
  const auto queries = RandomRows(37, dim, 101);
  for (const int threads : {1, 2, 5}) {
    common::ThreadPool pool(threads);
    for (const int shards : {1, 3, 8}) {
      IvfOptions options;
      options.num_centroids = 20;
      options.num_shards = shards;
      options.pool = &pool;
      IvfRetriever ivf(&store, options);
      ASSERT_EQ(ivf.num_centroids(), 20);
      ASSERT_EQ(ivf.num_shards(), shards);
      for (const int64_t k : {1, 10, 500}) {
        const auto expected = brute.RetrieveBruteForce(queries.data(), 37, k);
        const auto actual =
            ivf.RetrieveWithProbe(queries.data(), 37, k, /*nprobe=*/20);
        ExpectSameResults(actual, expected);
      }
    }
  }
}

TEST(IvfRetrieverTest, PartialProbeIsDeterministicAcrossShardsAndThreads) {
  const int64_t dim = 12;
  const int64_t n = 800;
  auto store =
      EmbeddingStore::FromRows(n, dim, ClusteredRows(n, dim, 16, 5));
  const auto queries = ClusteredRows(25, dim, 16, 77);
  std::vector<TopKResult> reference;
  for (const int threads : {1, 2, 5}) {
    common::ThreadPool pool(threads);
    for (const int shards : {1, 4, 7}) {
      IvfOptions options;
      options.num_centroids = 16;
      options.num_shards = shards;
      options.pool = &pool;
      IvfRetriever ivf(&store, options);
      const auto got = ivf.RetrieveWithProbe(queries.data(), 25, 10, 4);
      if (reference.empty()) {
        reference = got;
      } else {
        ExpectSameResults(got, reference);
      }
    }
  }
}

TEST(IvfRetrieverTest, PartialProbeRecallFloorOnClusteredData) {
  const int64_t dim = 32;
  const int64_t n = 5000;
  auto store =
      EmbeddingStore::FromRows(n, dim, ClusteredRows(n, dim, 32, 9));
  serve::TopKRetriever brute(&store);
  IvfOptions options;
  options.num_centroids = 32;
  options.nprobe = 8;
  IvfRetriever ivf(&store, options);
  const int64_t num_queries = 50;
  const auto queries = ClusteredRows(num_queries, dim, 32, 123);
  const auto truth = brute.RetrieveBruteForce(queries.data(), num_queries, 10);
  const auto got = ivf.Retrieve(queries.data(), num_queries, 10);
  double recall = 0.0;
  for (int64_t i = 0; i < num_queries; ++i) {
    int64_t hit = 0;
    for (const int64_t id : got[static_cast<size_t>(i)].ids) {
      for (const int64_t t : truth[static_cast<size_t>(i)].ids) {
        if (id == t) {
          ++hit;
          break;
        }
      }
    }
    recall += static_cast<double>(hit) / 10.0;
  }
  recall /= static_cast<double>(num_queries);
  EXPECT_GE(recall, 0.95) << "recall@10 with nprobe=8/32";
}

TEST(IvfRetrieverTest, EdgeCasesMatchRetrieverContract) {
  const int64_t dim = 8;
  auto store = EmbeddingStore::FromRows(6, dim, RandomRows(6, dim, 21));
  IvfOptions options;
  options.num_centroids = 3;
  IvfRetriever ivf(&store, options);
  const auto queries = RandomRows(2, dim, 22);
  // k = 0 and k < 0: per-query results exist but are empty.
  for (const int64_t k : {int64_t{0}, int64_t{-4}}) {
    const auto results = ivf.Retrieve(queries.data(), 2, k);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].ids.empty());
    EXPECT_TRUE(results[1].ids.empty());
  }
  // k > size: clamped to every entity, still fully ranked.
  const auto clamped = ivf.RetrieveWithProbe(queries.data(), 2, 99, 3);
  ASSERT_EQ(clamped.size(), 2u);
  EXPECT_EQ(clamped[0].ids.size(), 6u);
  // Zero queries.
  EXPECT_TRUE(ivf.Retrieve(nullptr, 0, 5).empty());
  // nprobe out of range is clamped, not rejected.
  const auto wide = ivf.RetrieveWithProbe(queries.data(), 2, 3, 999);
  ASSERT_EQ(wide.size(), 2u);
  EXPECT_EQ(wide[0].ids.size(), 3u);
}

TEST(IvfRetrieverTest, EmptyStoreServesEmptyResults) {
  EmbeddingStore store;
  IvfRetriever ivf(&store);
  EXPECT_EQ(ivf.size(), 0);
  EXPECT_EQ(ivf.num_centroids(), 0);
  const std::vector<float> query = {1.0f, 0.0f};
  const auto results = ivf.Retrieve(query.data(), 1, 5);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ids.empty());
}

TEST(IvfRetrieverTest, DuplicateRowsTieBreakTowardSmallerId) {
  // Same contract as TopKRetriever: exact score ties rank by id.
  std::vector<float> data = {1, 0, 1, 0, 0, 1, 1, 0};
  auto store = EmbeddingStore::FromRows(4, 2, data);
  IvfOptions options;
  options.num_centroids = 2;
  IvfRetriever ivf(&store, options);
  const std::vector<float> query = {1, 0};
  const auto results = ivf.RetrieveWithProbe(query.data(), 1, 3, 2);
  EXPECT_EQ(results[0].ids, (std::vector<int64_t>{0, 1, 3}));
}

TEST(IvfRetrieverTest, MetricsAreWired) {
  obs::MetricsRegistry registry;
  const int64_t dim = 8;
  auto store = EmbeddingStore::FromRows(50, dim, RandomRows(50, dim, 31));
  IvfOptions options;
  options.num_centroids = 5;
  options.nprobe = 2;
  options.registry = &registry;
  IvfRetriever ivf(&store, options);
  EXPECT_EQ(registry.GetCounter("index.builds").value(), 1);
  EXPECT_GE(registry.GetGauge("index.build_ms").value(), 0.0);
  const auto queries = RandomRows(4, dim, 32);
  (void)ivf.Retrieve(queries.data(), 4, 3);
  EXPECT_EQ(registry.GetCounter("index.queries").value(), 4);
  EXPECT_EQ(registry.GetCounter("index.probes").value(), 8);
  EXPECT_EQ(
      registry.GetHistogram("index.candidates_per_query").count(), 4);
}

class IvfReloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("desalign_ivf_" + std::to_string(::getpid()) + ".ckpt"))
                .string();
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  std::string path_;
};

TEST_F(IvfReloadTest, ReloadAndRebuildServesNewSnapshot) {
  const int64_t dim = 8;
  auto store = EmbeddingStore::FromRows(40, dim, RandomRows(40, dim, 41));
  IvfOptions options;
  options.num_centroids = 4;
  IvfRetriever ivf(&store, options);
  EXPECT_EQ(ivf.size(), 40);

  const auto next =
      EmbeddingStore::FromRows(70, dim, RandomRows(70, dim, 42));
  ASSERT_TRUE(next.Save(path_).ok());
  ASSERT_TRUE(ivf.ReloadAndRebuild(path_).ok());
  EXPECT_EQ(ivf.size(), 70);
  EXPECT_EQ(store.size(), 70);

  // The rebuilt index must rank the new table exactly.
  serve::TopKRetriever brute(&store);
  const auto queries = RandomRows(9, dim, 43);
  ExpectSameResults(
      ivf.RetrieveWithProbe(queries.data(), 9, 7, ivf.num_centroids()),
      brute.RetrieveBruteForce(queries.data(), 9, 7));
}

TEST_F(IvfReloadTest, FailedReloadKeepsServingOldIndex) {
  const int64_t dim = 8;
  auto store = EmbeddingStore::FromRows(40, dim, RandomRows(40, dim, 51));
  IvfOptions options;
  options.num_centroids = 4;
  IvfRetriever ivf(&store, options);
  const auto queries = RandomRows(5, dim, 52);
  const auto before = ivf.Retrieve(queries.data(), 5, 3);

  std::ofstream(path_, std::ios::binary) << "corrupted snapshot bytes";
  serve::ReloadOptions reload;
  reload.max_attempts = 2;
  reload.backoff_ms = 0.0;
  ASSERT_FALSE(ivf.ReloadAndRebuild(path_, reload).ok());
  EXPECT_EQ(ivf.size(), 40);
  ExpectSameResults(ivf.Retrieve(queries.data(), 5, 3), before);
}

TEST(RetrieverFactoryTest, ParsesKindAndBuildsMatchingRetriever) {
  ASSERT_TRUE(ParseRetrieverKind("brute").ok());
  ASSERT_TRUE(ParseRetrieverKind("ivf").ok());
  EXPECT_FALSE(ParseRetrieverKind("hnsw").ok());

  const int64_t dim = 8;
  auto store = EmbeddingStore::FromRows(30, dim, RandomRows(30, dim, 61));
  RetrieverConfig config;
  config.kind = RetrieverKind::kBruteForce;
  const auto brute = MakeRetriever(&store, config);
  ASSERT_NE(dynamic_cast<serve::TopKRetriever*>(brute.get()), nullptr);
  config.kind = RetrieverKind::kIvf;
  config.ivf.num_centroids = 30;  // full probe via nprobe clamp below
  config.ivf.nprobe = 30;
  const auto ivf = MakeRetriever(&store, config);
  ASSERT_NE(dynamic_cast<IvfRetriever*>(ivf.get()), nullptr);
  // Both implement the same contract; at full probe, the same bytes.
  const auto queries = RandomRows(6, dim, 62);
  ExpectSameResults(ivf->Retrieve(queries.data(), 6, 4),
                    brute->Retrieve(queries.data(), 6, 4));
}

TEST(IvfRetrieverTest, ConcurrentReloadAndQueriesStayConsistent) {
  // TSan-checked: queries racing ReloadAndRebuild must each see one
  // coherent (snapshot, lists) pair — sizes from exactly one table.
  const int64_t dim = 8;
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("desalign_ivf_race_" + std::to_string(::getpid()) + ".ckpt"))
          .string();
  auto store = EmbeddingStore::FromRows(64, dim, RandomRows(64, dim, 71));
  const auto bigger =
      EmbeddingStore::FromRows(96, dim, RandomRows(96, dim, 72));
  ASSERT_TRUE(bigger.Save(path).ok());

  IvfOptions options;
  options.num_centroids = 8;
  common::ThreadPool inline_pool(1);
  options.pool = &inline_pool;
  IvfRetriever ivf(&store, options);

  std::atomic<bool> stop{false};
  std::thread querier([&] {
    common::Rng rng(73);
    std::vector<float> query(static_cast<size_t>(dim));
    while (!stop.load(std::memory_order_relaxed)) {
      for (auto& v : query) v = rng.UniformF(-1.0f, 1.0f);
      const auto results = ivf.Retrieve(query.data(), 1, 5);
      ASSERT_EQ(results.size(), 1u);
      ASSERT_EQ(results[0].ids.size(), 5u);
      for (const int64_t id : results[0].ids) {
        ASSERT_GE(id, 0);
        ASSERT_LT(id, 96);
      }
    }
  });
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(ivf.ReloadAndRebuild(path).ok());
  }
  stop.store(true, std::memory_order_relaxed);
  querier.join();
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

}  // namespace
}  // namespace desalign::index
