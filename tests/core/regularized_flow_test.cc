// Tests for the regularized gradient flow (the [19] generalization):
// fidelity limits, reduction to plain propagation, and monotone descent of
// the composite energy.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/semantic_propagation.h"
#include "graph/dirichlet.h"
#include "graph/graph.h"
#include "tensor/init.h"

namespace desalign::core {
namespace {

using graph::Graph;
using tensor::Tensor;
using tensor::TensorPtr;

Graph TestGraph(uint64_t seed) {
  common::Rng rng(seed);
  std::vector<std::pair<int64_t, int64_t>> edges;
  for (int64_t i = 0; i + 1 < 16; ++i) edges.emplace_back(i, i + 1);
  for (int e = 0; e < 20; ++e) {
    edges.emplace_back(rng.UniformInt(16), rng.UniformInt(16));
  }
  return Graph(16, std::move(edges));
}

TensorPtr RandomX(uint64_t seed) {
  common::Rng rng(seed);
  auto x = Tensor::Create(16, 3);
  tensor::FillNormal(*x, rng);
  return x;
}

TEST(RegularizedFlowTest, ZeroFidelityMatchesPlainEuler) {
  auto g = TestGraph(1);
  auto norm = g.NormalizedAdjacency();
  auto x0 = RandomX(2);
  std::vector<bool> none(16, false);
  auto plain = SemanticPropagation::Run(norm, x0, none, 4, /*step=*/0.5f);
  auto reg = SemanticPropagation::RunRegularized(norm, x0, /*fidelity=*/0.0f,
                                                 4, /*step=*/0.5f);
  ASSERT_EQ(plain.size(), reg.size());
  for (size_t s = 0; s < plain.size(); ++s) {
    for (int64_t i = 0; i < x0->size(); ++i) {
      EXPECT_NEAR(plain[s]->data()[i], reg[s]->data()[i], 1e-5);
    }
  }
}

TEST(RegularizedFlowTest, HighFidelityPinsToInitialValue) {
  auto g = TestGraph(3);
  auto norm = g.NormalizedAdjacency();
  auto x0 = RandomX(4);
  const float mu = 50.0f;
  auto states = SemanticPropagation::RunRegularized(
      norm, x0, mu, 30, /*step=*/1.0f / (1.0f + mu / 2.0f));
  // Fixed point satisfies Δx + μ(x−x0) = 0 => x ≈ x0 + O(1/μ).
  double max_dev = 0.0;
  for (int64_t i = 0; i < x0->size(); ++i) {
    max_dev = std::max(
        max_dev, static_cast<double>(std::fabs(states.back()->data()[i] -
                                               x0->data()[i])));
  }
  EXPECT_LT(max_dev, 0.1);
}

TEST(RegularizedFlowTest, CompositeEnergyDecreasesMonotonically) {
  auto g = TestGraph(5);
  auto norm = g.NormalizedAdjacency();
  auto x0 = RandomX(6);
  const float mu = 0.5f;
  auto states =
      SemanticPropagation::RunRegularized(norm, x0, mu, 10, /*step=*/0.5f);
  auto composite = [&](const TensorPtr& x) {
    double fidelity = 0.0;
    for (int64_t i = 0; i < x->size(); ++i) {
      const double d = x->data()[i] - x0->data()[i];
      fidelity += d * d;
    }
    return graph::DirichletEnergy(norm, x) + 0.5 * mu * fidelity;
  };
  double prev = composite(states[0]);
  for (size_t s = 1; s < states.size(); ++s) {
    const double e = composite(states[s]);
    EXPECT_LE(e, prev + 1e-5);
    prev = e;
  }
}

TEST(RegularizedFlowTest, FidelityReducesDriftMonotonically) {
  auto g = TestGraph(7);
  auto norm = g.NormalizedAdjacency();
  auto x0 = RandomX(8);
  auto drift = [&](float mu) {
    auto states = SemanticPropagation::RunRegularized(
        norm, x0, mu, 8, /*step=*/1.0f / (1.0f + mu / 2.0f));
    double acc = 0.0;
    for (int64_t i = 0; i < x0->size(); ++i) {
      const double d = states.back()->data()[i] - x0->data()[i];
      acc += d * d;
    }
    return acc;
  };
  EXPECT_GT(drift(0.0f), drift(1.0f));
  EXPECT_GT(drift(1.0f), drift(10.0f));
}

TEST(RegularizedFlowTest, UnstableStepIsRejected) {
  auto g = TestGraph(9);
  auto norm = g.NormalizedAdjacency();
  auto x0 = RandomX(10);
  EXPECT_DEATH(SemanticPropagation::RunRegularized(norm, x0, /*mu=*/4.0f,
                                                   2, /*step=*/1.0f),
               "CHECK failed");
}

}  // namespace
}  // namespace desalign::core
