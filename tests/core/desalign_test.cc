#include "core/desalign.h"

#include <gtest/gtest.h>

#include "align/metrics.h"
#include "baselines/fusion_baselines.h"
#include "kg/synthetic.h"

namespace desalign::core {
namespace {

kg::AlignedKgPair SmallData(uint64_t seed = 41, double image_ratio = 0.85) {
  kg::SyntheticSpec spec;
  spec.num_entities = 130;
  spec.seed = seed;
  spec.seed_ratio = 0.3;
  spec.image_ratio = image_ratio;
  return kg::GenerateSyntheticPair(spec);
}

DesalignConfig FastConfig(uint64_t seed = 1) {
  auto cfg = DesalignConfig::Default(seed);
  cfg.base.dim = 16;
  cfg.base.epochs = 25;
  return cfg;
}

TEST(DesalignConfigTest, DefaultEnablesAllComponents) {
  auto cfg = DesalignConfig::Default();
  EXPECT_TRUE(cfg.base.use_cross_modal_attention);
  EXPECT_TRUE(cfg.base.use_intra_modal_losses);
  EXPECT_TRUE(cfg.base.use_min_confidence);
  EXPECT_TRUE(cfg.use_mmsl);
  EXPECT_TRUE(cfg.use_propagation);
  EXPECT_EQ(cfg.base.missing_policy,
            align::MissingFeaturePolicy::kZeroFill);
  EXPECT_EQ(cfg.base.name, "DESAlign");
}

TEST(DesalignTest, TrainsWellAboveChance) {
  auto data = SmallData();
  DesalignModel model(FastConfig());
  auto result = model.Evaluate(data);
  EXPECT_GT(result.metrics.h_at_1, 0.3);
  EXPECT_GT(result.metrics.mrr, result.metrics.h_at_1);
}

TEST(DesalignTest, PropagationDecodingChangesSimilarities) {
  auto data = SmallData(43, /*image_ratio=*/0.4);
  auto cfg = FastConfig();
  cfg.propagation_iterations = 2;
  DesalignModel with_sp(cfg);
  with_sp.Fit(data);
  auto sim_sp = with_sp.DecodeSimilarity(data);

  auto cfg_off = cfg;
  cfg_off.use_propagation = false;
  DesalignModel without_sp(cfg_off);
  without_sp.Fit(data);
  auto sim_plain = without_sp.DecodeSimilarity(data);

  // Same training (identical seeds/config up to decode), different decode.
  double diff = 0.0;
  for (int64_t i = 0; i < sim_sp->size(); ++i) {
    diff += std::fabs(sim_sp->data()[i] - sim_plain->data()[i]);
  }
  EXPECT_GT(diff / sim_sp->size(), 1e-4);
}

TEST(DesalignTest, PropagationHelpsUnderMissingModality) {
  // With heavily missing images, SP decoding should not hurt and typically
  // helps; require no significant regression.
  auto data = SmallData(44, /*image_ratio=*/0.3);
  auto cfg = FastConfig(3);
  DesalignModel with_sp(cfg);
  auto r_sp = with_sp.Evaluate(data);

  auto cfg_off = FastConfig(3);
  cfg_off.use_propagation = false;
  DesalignModel without_sp(cfg_off);
  auto r_plain = without_sp.Evaluate(data);

  EXPECT_GE(r_sp.metrics.mrr, r_plain.metrics.mrr - 0.03);
}

TEST(DesalignTest, ZeroPropagationIterationsFallsBackToPlainDecode) {
  auto data = SmallData();
  auto cfg = FastConfig();
  cfg.propagation_iterations = 0;
  DesalignModel model(cfg);
  model.Fit(data);
  auto sim = model.DecodeSimilarity(data);
  EXPECT_EQ(sim->rows(), static_cast<int64_t>(data.test_pairs.size()));
}

TEST(DesalignTest, BeatsMeaformerBaselineOnSameData) {
  auto data = SmallData(45);
  DesalignModel desalign(FastConfig(5));
  auto r_ours = desalign.Evaluate(data);

  auto meaformer_cfg = baselines::MeaformerConfig(5);
  meaformer_cfg.dim = 16;
  meaformer_cfg.epochs = 25;
  align::FusionAlignModel meaformer(meaformer_cfg);
  auto r_base = meaformer.Evaluate(data);

  EXPECT_GE(r_ours.metrics.mrr, r_base.metrics.mrr - 0.02);
}

TEST(DesalignTest, AblationSwitchesProduceWorkingModels) {
  auto data = SmallData(46);
  for (int variant = 0; variant < 4; ++variant) {
    auto cfg = FastConfig(7);
    switch (variant) {
      case 0:
        cfg.use_mmsl = false;
        break;
      case 1:
        cfg.use_propagation = false;
        break;
      case 2:
        cfg.base.use_min_confidence = false;
        break;
      case 3:
        cfg.base.use_initial_task_loss = false;
        break;
    }
    DesalignModel model(cfg);
    auto r = model.Evaluate(data);
    EXPECT_GT(r.metrics.h_at_1, 0.15) << "variant " << variant;
  }
}

TEST(DesalignTest, DeterministicGivenSeed) {
  auto data = SmallData(47);
  DesalignModel a(FastConfig(9));
  DesalignModel b(FastConfig(9));
  EXPECT_DOUBLE_EQ(a.Evaluate(data).metrics.mrr,
                   b.Evaluate(data).metrics.mrr);
}

}  // namespace
}  // namespace desalign::core
