// Semantic Propagation tests: the explicit Euler scheme (Eq. 20–22), its
// convergence to the closed-form solution (Eq. 19 / Proposition 4), and its
// low-pass (energy-decreasing) behaviour.

#include "core/semantic_propagation.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/dirichlet.h"
#include "graph/graph.h"
#include "tensor/init.h"
#include "tensor/tensor.h"

namespace desalign::core {
namespace {

using graph::Graph;
using tensor::Tensor;
using tensor::TensorPtr;

Graph ConnectedRandomGraph(int64_t n, int64_t extra_edges, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<std::pair<int64_t, int64_t>> edges;
  for (int64_t i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  for (int64_t e = 0; e < extra_edges; ++e) {
    int64_t u = rng.UniformInt(n);
    int64_t v = rng.UniformInt(n);
    if (u != v) edges.emplace_back(u, v);
  }
  return Graph(n, std::move(edges));
}

TensorPtr RandomX(int64_t n, int64_t d, uint64_t seed) {
  common::Rng rng(seed);
  auto x = Tensor::Create(n, d);
  tensor::FillNormal(*x, rng);
  return x;
}

TEST(PropagationTest, StepPreservesKnownRows) {
  Graph g = ConnectedRandomGraph(10, 12, 1);
  auto norm = g.NormalizedAdjacency();
  auto x = RandomX(10, 3, 2);
  std::vector<bool> known(10, false);
  known[0] = known[4] = known[7] = true;
  auto next = SemanticPropagation::Step(norm, x, x, known);
  for (int64_t i : {0, 4, 7}) {
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_EQ(next->At(i, j), x->At(i, j));
    }
  }
}

TEST(PropagationTest, StepWithUnitStepIsFilterPlusReset) {
  Graph g = ConnectedRandomGraph(8, 10, 3);
  auto norm = g.NormalizedAdjacency();
  auto x = RandomX(8, 2, 4);
  std::vector<bool> known(8, false);
  auto next = SemanticPropagation::Step(norm, x, x, known, 1.0f);
  // With no known rows and h=1, the step is exactly x <- Ãx.
  std::vector<float> expected(16);
  norm->Multiply(x->data().data(), 2, expected.data());
  for (int64_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(next->data()[i], expected[i], 1e-6);
  }
}

TEST(PropagationTest, FractionalStepInterpolates) {
  Graph g = ConnectedRandomGraph(8, 10, 5);
  auto norm = g.NormalizedAdjacency();
  auto x = RandomX(8, 2, 6);
  std::vector<bool> known(8, false);
  auto full = SemanticPropagation::Step(norm, x, x, known, 1.0f);
  auto half = SemanticPropagation::Step(norm, x, x, known, 0.5f);
  for (int64_t i = 0; i < x->size(); ++i) {
    EXPECT_NEAR(half->data()[i],
                0.5f * x->data()[i] + 0.5f * full->data()[i], 1e-5);
  }
}

TEST(PropagationTest, RunReturnsAllStates) {
  Graph g = ConnectedRandomGraph(8, 10, 7);
  auto norm = g.NormalizedAdjacency();
  auto x = RandomX(8, 2, 8);
  std::vector<bool> known(8, true);
  auto states = SemanticPropagation::Run(norm, x, known, 4);
  ASSERT_EQ(states.size(), 5u);
  EXPECT_EQ(states[0].get(), x.get());
  // With everything known, every state equals x.
  for (const auto& s : states) {
    EXPECT_EQ(s->data(), x->data());
  }
}

TEST(PropagationTest, FilteringDecreasesDirichletEnergy) {
  // The Euler scheme is gradient descent on the Dirichlet energy, so each
  // unconstrained step smooths the features (paper §IV-C).
  Graph g = ConnectedRandomGraph(20, 40, 9);
  auto norm = g.NormalizedAdjacency();
  auto x = RandomX(20, 4, 10);
  std::vector<bool> known(20, false);
  auto states = SemanticPropagation::Run(norm, x, known, 5);
  double prev = graph::DirichletEnergy(norm, states[0]);
  for (size_t k = 1; k < states.size(); ++k) {
    const double e = graph::DirichletEnergy(norm, states[k]);
    EXPECT_LE(e, prev + 1e-4);
    prev = e;
  }
}

// Proposition 4 / Eq. 19: the Euler iteration with boundary reset converges
// to the closed-form interpolation of the missing rows.
class ClosedFormConvergenceTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(ClosedFormConvergenceTest, EulerConvergesToClosedForm) {
  const uint64_t seed = GetParam();
  Graph g = ConnectedRandomGraph(14, 20, seed);
  auto norm = g.NormalizedAdjacency();
  auto x = RandomX(14, 3, seed + 50);
  common::Rng rng(seed + 99);
  std::vector<bool> known(14, false);
  int known_count = 0;
  for (int64_t i = 0; i < 14; ++i) {
    known[i] = rng.Bernoulli(0.6);
    known_count += known[i];
  }
  if (known_count == 0) known[0] = true;

  auto closed = SemanticPropagation::SolveClosedForm(norm, x, known);
  auto states = SemanticPropagation::Run(norm, x, known, 400);
  const auto& final_state = states.back();
  for (int64_t i = 0; i < x->size(); ++i) {
    EXPECT_NEAR(final_state->data()[i], closed->data()[i], 5e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosedFormConvergenceTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(ClosedFormTest, KnownRowsPassThrough) {
  Graph g = ConnectedRandomGraph(10, 15, 11);
  auto norm = g.NormalizedAdjacency();
  auto x = RandomX(10, 2, 12);
  std::vector<bool> known(10, true);
  known[3] = known[6] = false;
  auto solved = SemanticPropagation::SolveClosedForm(norm, x, known);
  for (int64_t i = 0; i < 10; ++i) {
    if (!known[i]) continue;
    for (int64_t j = 0; j < 2; ++j) {
      EXPECT_EQ(solved->At(i, j), x->At(i, j));
    }
  }
}

TEST(ClosedFormTest, InterpolatedValueIsNeighborhoodAverageOnStar) {
  // Star graph: center 0 unknown, leaves known. The harmonic solution for
  // the center is determined by the normalized-adjacency stationarity
  // (I − Ã)₀₀ x₀ = Σ_leaf Ã₀ℓ x_ℓ.
  Graph g(4, {{0, 1}, {0, 2}, {0, 3}});
  auto norm = g.NormalizedAdjacency();
  auto x = Tensor::FromData(4, 1, {0.0f, 1.0f, 1.0f, 1.0f});
  std::vector<bool> known = {false, true, true, true};
  auto solved = SemanticPropagation::SolveClosedForm(norm, x, known);
  // Stationarity: x0 = (Ãx)_0 => x0(1 − Ã00) = Σ Ã0ℓ·1.
  double coupling = 0.0;
  for (int64_t l = 1; l < 4; ++l) coupling += norm->At(0, l);
  const double expected = coupling / (1.0 - norm->At(0, 0));
  EXPECT_NEAR(solved->At(0, 0), expected, 1e-4);
  // Symmetric normalization is not row-stochastic, so the harmonic value
  // need not stay inside [min, max] of the leaves — but it must inherit
  // their sign.
  EXPECT_GT(solved->At(0, 0), 0.0f);
}

TEST(ClosedFormTest, AllKnownIsIdentity) {
  Graph g = ConnectedRandomGraph(6, 8, 13);
  auto norm = g.NormalizedAdjacency();
  auto x = RandomX(6, 2, 14);
  std::vector<bool> known(6, true);
  auto solved = SemanticPropagation::SolveClosedForm(norm, x, known);
  EXPECT_EQ(solved->data(), x->data());
}

}  // namespace
}  // namespace desalign::core
