#include "core/mmsl.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/dirichlet.h"
#include "graph/graph.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace desalign::core {
namespace {

using graph::Graph;
using tensor::Tensor;
using tensor::TensorPtr;

struct Setup {
  tensor::CsrMatrixPtr norm;
  TensorPtr x0;
  TensorPtr x_mid;
  TensorPtr x_final;
};

Setup MakeSetup(uint64_t seed, float mid_scale = 1.0f,
                float final_scale = 1.0f) {
  common::Rng rng(seed);
  std::vector<std::pair<int64_t, int64_t>> edges;
  for (int64_t i = 0; i + 1 < 12; ++i) edges.emplace_back(i, i + 1);
  for (int i = 0; i < 10; ++i) {
    edges.emplace_back(rng.UniformInt(12), rng.UniformInt(12));
  }
  Graph g(12, std::move(edges));
  Setup s;
  s.norm = g.NormalizedAdjacency();
  s.x0 = Tensor::Create(12, 4, /*requires_grad=*/true);
  s.x_mid = Tensor::Create(12, 4, /*requires_grad=*/true);
  s.x_final = Tensor::Create(12, 4, /*requires_grad=*/true);
  tensor::FillNormal(*s.x0, rng);
  tensor::FillNormal(*s.x_mid, rng, 0.0f, mid_scale);
  tensor::FillNormal(*s.x_final, rng, 0.0f, final_scale);
  return s;
}

double NormalizedEnergy(const tensor::CsrMatrixPtr& norm,
                        const TensorPtr& x) {
  return graph::DirichletEnergy(norm, x) /
         static_cast<double>(x->rows() * x->cols());
}

TEST(MmslTest, ZeroPenaltyInsideBounds) {
  auto s = MakeSetup(1);
  MmslConfig cfg;
  // Pick loose constants so the random energies satisfy both constraints.
  cfg.c_min = 1e-4f;
  cfg.c_max = 1e4f;
  auto p = MmslPenalty(s.norm, s.x0, s.x_mid, s.x_final, cfg);
  ASSERT_TRUE(p != nullptr);
  EXPECT_NEAR(p->ScalarValue(), 0.0f, 1e-6);
}

TEST(MmslTest, LowerBoundViolationIsPenalized) {
  // Final layer energy collapses (over-smoothing): scale final toward a
  // constant vector.
  auto s = MakeSetup(2, /*mid_scale=*/1.0f, /*final_scale=*/1e-3f);
  MmslConfig cfg;
  cfg.c_min = 0.5f;
  cfg.c_max = 1e4f;
  auto p = MmslPenalty(s.norm, s.x0, s.x_mid, s.x_final, cfg);
  const double expected =
      0.5 * NormalizedEnergy(s.norm, s.x_mid) -
      NormalizedEnergy(s.norm, s.x_final);
  ASSERT_GT(expected, 0.0);
  EXPECT_NEAR(p->ScalarValue(), expected, 1e-4);
}

TEST(MmslTest, UpperBoundViolationIsPenalized) {
  // Final energy explodes relative to the initial embedding.
  auto s = MakeSetup(3, /*mid_scale=*/1e-3f, /*final_scale=*/20.0f);
  MmslConfig cfg;
  cfg.c_min = 1e-6f;
  cfg.c_max = 1.0f;
  auto p = MmslPenalty(s.norm, s.x0, s.x_mid, s.x_final, cfg);
  const double expected = NormalizedEnergy(s.norm, s.x_final) -
                          NormalizedEnergy(s.norm, s.x0);
  ASSERT_GT(expected, 0.0);
  EXPECT_NEAR(p->ScalarValue() / expected, 1.0, 1e-3);
}

TEST(MmslTest, PenaltyWeightScales) {
  auto s = MakeSetup(4, 1.0f, 1e-3f);
  MmslConfig cfg;
  cfg.c_min = 0.9f;
  cfg.penalty_weight = 1.0f;
  const float base = MmslPenalty(s.norm, s.x0, s.x_mid, s.x_final, cfg)
                         ->ScalarValue();
  cfg.penalty_weight = 2.5f;
  const float scaled = MmslPenalty(s.norm, s.x0, s.x_mid, s.x_final, cfg)
                           ->ScalarValue();
  EXPECT_NEAR(scaled, 2.5f * base, 1e-5);
}

TEST(MmslTest, NullInputsDegradeGracefully) {
  auto s = MakeSetup(5);
  MmslConfig cfg;
  EXPECT_EQ(MmslPenalty(s.norm, s.x0, s.x_mid, nullptr, cfg), nullptr);
  // Only the available constraint is applied when a layer is missing.
  auto lower_only = MmslPenalty(s.norm, nullptr, s.x_mid, s.x_final, cfg);
  ASSERT_TRUE(lower_only != nullptr);
  auto upper_only = MmslPenalty(s.norm, s.x0, nullptr, s.x_final, cfg);
  ASSERT_TRUE(upper_only != nullptr);
}

TEST(MmslTest, GradientsPushEnergyBackAboveLowerBound) {
  auto s = MakeSetup(6, 1.0f, 1e-2f);
  MmslConfig cfg;
  cfg.c_min = 0.5f;
  cfg.c_max = 1e6f;
  const double before_gap =
      0.5 * NormalizedEnergy(s.norm, s.x_mid) -
      NormalizedEnergy(s.norm, s.x_final);
  ASSERT_GT(before_gap, 0.0);
  // The penalty's gradient w.r.t. x_final is tiny at first (energies are
  // normalized by N·d), so use a generous step and iteration budget; the
  // break condition stops as soon as the constraint is satisfied.
  for (int step = 0; step < 600; ++step) {
    auto p = MmslPenalty(s.norm, s.x0, s.x_mid, s.x_final, cfg);
    if (p->ScalarValue() <= 0.0f) break;
    s.x_final->ZeroGrad();
    s.x_mid->ZeroGrad();
    s.x0->ZeroGrad();
    p->Backward();
    for (int64_t i = 0; i < s.x_final->size(); ++i) {
      s.x_final->data()[i] -= 2.0f * s.x_final->grad()[i];
    }
  }
  MmslConfig probe = cfg;
  const float final_penalty =
      MmslPenalty(s.norm, s.x0, s.x_mid, s.x_final, probe)->ScalarValue();
  EXPECT_LT(final_penalty, before_gap * 0.5);
}

}  // namespace
}  // namespace desalign::core
