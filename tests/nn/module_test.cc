#include "nn/module.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/layers.h"

namespace desalign::nn {
namespace {

class Child : public Module {
 public:
  Child() { p_ = AddParameter("p", 2, 3); }
  TensorPtr p_;
};

class Parent : public Module {
 public:
  Parent() {
    q_ = AddParameter("q", 1, 4);
    AddChild(&child_);
  }
  TensorPtr q_;
  Child child_;
};

TEST(ModuleTest, ParametersIncludeChildren) {
  Parent m;
  auto params = m.Parameters();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(m.NumParameters(), 4 + 6);
}

TEST(ModuleTest, ParametersRequireGrad) {
  Parent m;
  for (const auto& p : m.Parameters()) {
    EXPECT_TRUE(p->requires_grad());
  }
}

TEST(ModuleTest, ZeroGradClearsAll) {
  Parent m;
  for (const auto& p : m.Parameters()) {
    p->grad().assign(p->size(), 1.0f);
  }
  m.ZeroGrad();
  for (const auto& p : m.Parameters()) {
    for (float g : p->grad()) EXPECT_EQ(g, 0.0f);
  }
}

TEST(ModuleTest, LinearParameterCount) {
  common::Rng rng(1);
  Linear with_bias(5, 3, rng, /*with_bias=*/true);
  EXPECT_EQ(with_bias.NumParameters(), 5 * 3 + 3);
  Linear no_bias(5, 3, rng, /*with_bias=*/false);
  EXPECT_EQ(no_bias.NumParameters(), 5 * 3);
}

}  // namespace
}  // namespace desalign::nn
