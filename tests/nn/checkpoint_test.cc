#include "nn/checkpoint.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "nn/serialize.h"
#include "tensor/init.h"

namespace desalign::nn {
namespace {

using tensor::Tensor;
using tensor::TensorPtr;

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    common::FaultInjector::Global().Clear();
    dir_ = std::filesystem::temp_directory_path() /
           ("desalign_ckpt_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "ckpt.dckpt").string();
  }
  void TearDown() override {
    common::FaultInjector::Global().Clear();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::filesystem::path dir_;
  std::string path_;
};

std::vector<TensorPtr> MakeParams(uint64_t seed) {
  common::Rng rng(seed);
  std::vector<TensorPtr> params = {
      Tensor::Create(3, 4, true),
      Tensor::Create(1, 7, true),
      Tensor::Create(5, 5, true),
  };
  for (auto& p : params) tensor::FillNormal(*p, rng);
  return params;
}

TrainingCheckpoint MakeFullCheckpoint(uint64_t seed) {
  TrainingCheckpoint ckpt;
  ckpt.epoch = 17;
  ckpt.tensors = MakeParams(seed);
  ckpt.has_optimizer = true;
  ckpt.opt_step = 123;
  common::Rng rng(seed + 1);
  for (const auto& t : ckpt.tensors) {
    std::vector<float> m(t->data().size());
    std::vector<float> v(t->data().size());
    for (auto& x : m) x = rng.UniformF(-1.0f, 1.0f);
    for (auto& x : v) x = rng.UniformF(0.0f, 1.0f);
    ckpt.opt_m.push_back(std::move(m));
    ckpt.opt_v.push_back(std::move(v));
  }
  ckpt.has_rng = true;
  common::Rng engine(seed + 2);
  engine.Uniform();  // advance so the state is not the seed default
  ckpt.rng_state = engine.SerializeState();
  ckpt.has_train_state = true;
  ckpt.best_loss = 0.625f;
  ckpt.stall = 2;
  ckpt.lr_scale = 0.25f;
  return ckpt;
}

TEST_F(CheckpointTest, FullRoundTripIsExact) {
  const auto saved = MakeFullCheckpoint(5);
  ASSERT_TRUE(SaveCheckpoint(saved, path_).ok());
  EXPECT_TRUE(IsVersionedCheckpoint(path_));
  auto loaded = LoadCheckpoint(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const auto& got = loaded.value();
  EXPECT_EQ(got.epoch, saved.epoch);
  ASSERT_EQ(got.tensors.size(), saved.tensors.size());
  for (size_t i = 0; i < saved.tensors.size(); ++i) {
    EXPECT_EQ(got.tensors[i]->rows(), saved.tensors[i]->rows());
    EXPECT_EQ(got.tensors[i]->cols(), saved.tensors[i]->cols());
    EXPECT_EQ(got.tensors[i]->data(), saved.tensors[i]->data());
  }
  ASSERT_TRUE(got.has_optimizer);
  EXPECT_EQ(got.opt_step, saved.opt_step);
  EXPECT_EQ(got.opt_m, saved.opt_m);
  EXPECT_EQ(got.opt_v, saved.opt_v);
  ASSERT_TRUE(got.has_rng);
  EXPECT_EQ(got.rng_state, saved.rng_state);
  ASSERT_TRUE(got.has_train_state);
  EXPECT_EQ(got.best_loss, saved.best_loss);
  EXPECT_EQ(got.stall, saved.stall);
  EXPECT_EQ(got.lr_scale, saved.lr_scale);
}

TEST_F(CheckpointTest, ParamsOnlyRoundTrip) {
  TrainingCheckpoint saved;
  saved.tensors = MakeParams(6);
  ASSERT_TRUE(SaveCheckpoint(saved, path_).ok());
  auto loaded = LoadCheckpoint(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded.value().has_optimizer);
  EXPECT_FALSE(loaded.value().has_rng);
  EXPECT_FALSE(loaded.value().has_train_state);
  EXPECT_EQ(loaded.value().tensors[2]->data(), saved.tensors[2]->data());
}

TEST_F(CheckpointTest, RngStateRoundTripReproducesDraws) {
  common::Rng original(99);
  for (int i = 0; i < 10; ++i) original.UniformInt(1000);
  TrainingCheckpoint ckpt;
  ckpt.tensors = MakeParams(7);
  ckpt.has_rng = true;
  ckpt.rng_state = original.SerializeState();
  ASSERT_TRUE(SaveCheckpoint(ckpt, path_).ok());
  auto loaded = LoadCheckpoint(path_);
  ASSERT_TRUE(loaded.ok());
  common::Rng restored(1);  // different seed, will be overwritten
  ASSERT_TRUE(restored.DeserializeState(loaded.value().rng_state));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(restored.UniformInt(1 << 30), original.UniformInt(1 << 30));
  }
}

TEST_F(CheckpointTest, EveryByteIsCoveredByChecksums) {
  ASSERT_TRUE(SaveCheckpoint(MakeFullCheckpoint(8), path_).ok());
  const auto size = std::filesystem::file_size(path_);
  const std::string pristine = [&] {
    std::ifstream in(path_, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }();
  // Flip one bit at a spread of offsets (header, payloads, CRCs, footer,
  // end marker); every single one must be rejected with a clean Status.
  for (uint64_t off = 0; off < size; off += 13) {
    std::string corrupt = pristine;
    corrupt[off] ^= 1;
    std::ofstream(path_, std::ios::binary) << corrupt;
    auto loaded = LoadCheckpoint(path_);
    ASSERT_FALSE(loaded.ok()) << "bit flip at offset " << off;
    EXPECT_EQ(loaded.status().code(), common::StatusCode::kIoError);
  }
}

TEST_F(CheckpointTest, TruncationRejectedAtEveryLength) {
  ASSERT_TRUE(SaveCheckpoint(MakeFullCheckpoint(9), path_).ok());
  const auto size = std::filesystem::file_size(path_);
  for (uint64_t keep = 0; keep < size; keep += 97) {
    ASSERT_TRUE(SaveCheckpoint(MakeFullCheckpoint(9), path_).ok());
    std::filesystem::resize_file(path_, keep);
    auto loaded = LoadCheckpoint(path_);
    ASSERT_FALSE(loaded.ok()) << "kept " << keep << " of " << size;
  }
}

TEST_F(CheckpointTest, LegacyV1FilesStillLoad) {
  const auto params = MakeParams(10);
  ASSERT_TRUE(SaveParameters(params, path_).ok());
  EXPECT_FALSE(IsVersionedCheckpoint(path_));
  auto loaded = LoadCheckpoint(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded.value().has_optimizer);
  ASSERT_EQ(loaded.value().tensors.size(), params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    EXPECT_EQ(loaded.value().tensors[i]->data(), params[i]->data());
  }
}

TEST_F(CheckpointTest, V2FilesLoadThroughLegacyEntryPoints) {
  TrainingCheckpoint saved = MakeFullCheckpoint(11);
  ASSERT_TRUE(SaveCheckpoint(saved, path_).ok());
  // LoadAllParameters sniffs the v2 magic and returns the tensors.
  auto all = LoadAllParameters(path_);
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  ASSERT_EQ(all.value().size(), saved.tensors.size());
  EXPECT_EQ(all.value()[1]->data(), saved.tensors[1]->data());
  // LoadParameters loads in-place into matching shapes.
  auto fresh = MakeParams(12);
  ASSERT_TRUE(LoadParameters(fresh, path_).ok());
  EXPECT_EQ(fresh[0]->data(), saved.tensors[0]->data());
}

TEST_F(CheckpointTest, MissingFileAndGarbageRejected) {
  EXPECT_FALSE(LoadCheckpoint((dir_ / "nope.dckpt").string()).ok());
  std::ofstream(path_) << "not a checkpoint at all";
  EXPECT_FALSE(LoadCheckpoint(path_).ok());
  EXPECT_FALSE(IsVersionedCheckpoint(path_));
}

TEST_F(CheckpointTest, InjectedTornWriteIsRejectedOnLoad) {
  ASSERT_TRUE(common::FaultInjector::Global()
                  .Configure("ckpt.write.data:short:100")
                  .ok());
  // The torn write "succeeds" (models rename-before-data crash ordering)…
  ASSERT_TRUE(SaveCheckpoint(MakeFullCheckpoint(13), path_).ok());
  common::FaultInjector::Global().Clear();
  // …but the checksummed loader refuses the torn file.
  auto loaded = LoadCheckpoint(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), common::StatusCode::kIoError);
}

TEST_F(CheckpointTest, InjectedReadBitFlipRejectedWithoutTouchingDisk) {
  ASSERT_TRUE(SaveCheckpoint(MakeFullCheckpoint(14), path_).ok());
  ASSERT_TRUE(
      common::FaultInjector::Global().Configure("ckpt.read:bitflip:60").ok());
  EXPECT_FALSE(LoadCheckpoint(path_).ok());  // corrupted in flight
  EXPECT_TRUE(LoadCheckpoint(path_).ok());   // disk copy is fine
}

TEST_F(CheckpointTest, ManagerRotatesAndPrunes) {
  CheckpointManager::Options options;
  options.keep_last = 3;
  CheckpointManager manager(dir_.string(), options);
  ASSERT_TRUE(manager.Init().ok());
  for (int epoch = 0; epoch < 5; ++epoch) {
    auto ckpt = MakeFullCheckpoint(20 + static_cast<uint64_t>(epoch));
    ckpt.epoch = epoch;
    ASSERT_TRUE(manager.Write(ckpt).ok());
  }
  ASSERT_EQ(manager.files().size(), 3u);
  EXPECT_EQ(manager.files().front(), "ckpt_00000002.dckpt");
  EXPECT_EQ(manager.files().back(), "ckpt_00000004.dckpt");
  EXPECT_FALSE(std::filesystem::exists(dir_ / "ckpt_00000000.dckpt"));
  EXPECT_TRUE(std::filesystem::exists(dir_ / "MANIFEST"));

  std::string loaded_path;
  auto latest = manager.LoadLatestValid(&loaded_path);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest.value().epoch, 4);
  EXPECT_EQ(loaded_path, (dir_ / "ckpt_00000004.dckpt").string());
}

TEST_F(CheckpointTest, ManagerSkipsCorruptNewestCheckpoint) {
  CheckpointManager manager(dir_.string());
  ASSERT_TRUE(manager.Init().ok());
  for (int epoch = 0; epoch < 3; ++epoch) {
    auto ckpt = MakeFullCheckpoint(30);
    ckpt.epoch = epoch;
    ASSERT_TRUE(manager.Write(ckpt).ok());
  }
  // Corrupt the newest file; the previous one must win.
  std::filesystem::resize_file(dir_ / "ckpt_00000002.dckpt", 64);
  auto latest = manager.LoadLatestValid();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest.value().epoch, 1);
}

TEST_F(CheckpointTest, ManagerRebuildsManifestFromDirectoryScan) {
  {
    CheckpointManager manager(dir_.string());
    ASSERT_TRUE(manager.Init().ok());
    for (int epoch = 0; epoch < 3; ++epoch) {
      auto ckpt = MakeFullCheckpoint(40);
      ckpt.epoch = epoch;
      ASSERT_TRUE(manager.Write(ckpt).ok());
    }
  }
  // A crashed run can leave the manifest missing or corrupt; Init must
  // recover the same file set by scanning the directory.
  for (const char* damage : {"missing", "garbage"}) {
    if (std::string(damage) == "missing") {
      std::filesystem::remove(dir_ / "MANIFEST");
    } else {
      std::ofstream(dir_ / "MANIFEST") << "definitely not a manifest\n";
    }
    CheckpointManager reopened(dir_.string());
    ASSERT_TRUE(reopened.Init().ok()) << damage;
    EXPECT_EQ(reopened.files().size(), 3u) << damage;
    auto latest = reopened.LoadLatestValid();
    ASSERT_TRUE(latest.ok()) << damage;
    EXPECT_EQ(latest.value().epoch, 2) << damage;
  }
}

TEST_F(CheckpointTest, ManagerEmptyDirReportsNotFound) {
  CheckpointManager manager((dir_ / "fresh").string());
  ASSERT_TRUE(manager.Init().ok());
  auto latest = manager.LoadLatestValid();
  ASSERT_FALSE(latest.ok());
  EXPECT_EQ(latest.status().code(), common::StatusCode::kNotFound);
}

TEST_F(CheckpointTest, ManagerKeepsPreviousCheckpointThroughTornWrite) {
  CheckpointManager manager(dir_.string());
  ASSERT_TRUE(manager.Init().ok());
  auto good = MakeFullCheckpoint(50);
  good.epoch = 0;
  ASSERT_TRUE(manager.Write(good).ok());
  // The next write is torn mid-payload; the rotation must still be able to
  // serve epoch 0.
  ASSERT_TRUE(common::FaultInjector::Global()
                  .Configure("ckpt.write.data:short:40")
                  .ok());
  auto torn = MakeFullCheckpoint(51);
  torn.epoch = 1;
  ASSERT_TRUE(manager.Write(torn).ok());
  common::FaultInjector::Global().Clear();
  auto latest = manager.LoadLatestValid();
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest.value().epoch, 0);
}

TEST_F(CheckpointTest, SaveRejectsMismatchedOptimizerState) {
  auto ckpt = MakeFullCheckpoint(60);
  ckpt.opt_m.pop_back();
  EXPECT_EQ(SaveCheckpoint(ckpt, path_).code(),
            common::StatusCode::kInvalidArgument);
  ckpt = MakeFullCheckpoint(61);
  ckpt.opt_v[0].resize(3);
  EXPECT_EQ(SaveCheckpoint(ckpt, path_).code(),
            common::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace desalign::nn
