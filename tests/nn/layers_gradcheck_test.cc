// Numeric gradient checks for the composite nn layers. layers_test.cc
// covers shapes and gradient *flow*; here every parameter and input of
// Linear, GatEncoder and CrossModalAttention is verified against central
// finite differences, including across randomized shapes.

#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/graph.h"
#include "nn/layers.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "testing/grad_check.h"

namespace desalign::nn {
namespace {

namespace ops = desalign::tensor;
using tensor::Tensor;
using tensor::TensorPtr;

TensorPtr RandomInput(int64_t r, int64_t c, uint64_t seed,
                      bool requires_grad = true) {
  common::Rng rng(seed);
  auto t = Tensor::Create(r, c, requires_grad);
  tensor::FillNormal(*t, rng, 0.0f, 0.8f);
  return t;
}

graph::Graph::DirectedEdges TriangleEdges() {
  graph::Graph g(3, {{0, 1}, {1, 2}, {0, 2}});
  return g.MessagePassingEdges(true);
}

TEST(LinearGradCheckTest, ParametersAndInput) {
  common::Rng rng(11);
  Linear fc(3, 2, rng);
  auto x = RandomInput(4, 3, 12);
  auto inputs = fc.Parameters();
  inputs.push_back(x);
  desalign::testing::CheckGradients(inputs, [&] {
    return ops::Sum(ops::Square(fc.Forward(x)));
  });
}

TEST(LinearGradCheckTest, WithoutBias) {
  common::Rng rng(13);
  Linear fc(2, 3, rng, /*with_bias=*/false);
  auto x = RandomInput(3, 2, 14);
  auto inputs = fc.Parameters();
  inputs.push_back(x);
  desalign::testing::CheckGradients(inputs, [&] {
    return ops::Sum(ops::Square(fc.Forward(x)));
  });
}

// Randomized shapes for Linear.
class LinearShapeGradTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(LinearShapeGradTest, Gradients) {
  auto [n, in_dim, out_dim] = GetParam();
  const uint64_t seed = 700 + static_cast<uint64_t>(n * 17 + in_dim * 3 +
                                                    out_dim);
  common::Rng rng(seed);
  Linear fc(in_dim, out_dim, rng);
  auto x = RandomInput(n, in_dim, seed + 1);
  auto inputs = fc.Parameters();
  inputs.push_back(x);
  desalign::testing::CheckGradients(inputs, [&] {
    return ops::Sum(ops::Square(fc.Forward(x)));
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LinearShapeGradTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 4, 2),
                      std::make_tuple(5, 2, 2), std::make_tuple(3, 3, 5)));

TEST(GatEncoderGradCheckTest, MultiLayerParametersAndInput) {
  common::Rng rng(15);
  GatEncoder enc(4, /*num_heads=*/2, /*num_layers=*/2, rng);
  auto x = RandomInput(3, 4, 16);
  auto edges = TriangleEdges();
  auto inputs = enc.Parameters();
  inputs.push_back(x);
  desalign::testing::CheckGradients(inputs, [&] {
    return ops::Sum(ops::Square(enc.Forward(x, edges, 3)));
  });
}

TEST(GatEncoderGradCheckTest, SingleHeadSingleLayer) {
  common::Rng rng(17);
  GatEncoder enc(2, /*num_heads=*/1, /*num_layers=*/1, rng);
  auto x = RandomInput(3, 2, 18);
  auto edges = TriangleEdges();
  auto inputs = enc.Parameters();
  inputs.push_back(x);
  desalign::testing::CheckGradients(inputs, [&] {
    return ops::Sum(ops::Square(enc.Forward(x, edges, 3)));
  });
}

std::vector<TensorPtr> ModalInputs(int64_t num_modalities, int64_t n,
                                   int64_t d, uint64_t seed) {
  std::vector<TensorPtr> inputs;
  for (int64_t m = 0; m < num_modalities; ++m) {
    inputs.push_back(RandomInput(n, d, seed + static_cast<uint64_t>(m)));
  }
  return inputs;
}

TEST(CrossModalAttentionGradCheckTest, AllParametersAndInputs) {
  common::Rng rng(19);
  const int64_t dim = 4;
  CrossModalAttention caw(dim, /*num_modalities=*/2, /*num_heads=*/2, rng);
  auto modal = ModalInputs(2, /*n=*/3, dim, 20);
  auto inputs = caw.Parameters();
  for (const auto& m : modal) inputs.push_back(m);
  desalign::testing::CheckGradients(inputs, [&] {
    auto out = caw.Forward(modal);
    TensorPtr total;
    for (const auto& fused : out.fused) {
      auto term = ops::Sum(ops::Square(fused));
      total = total ? ops::Add(total, term) : term;
    }
    return total;
  });
}

TEST(CrossModalAttentionGradCheckTest, MidLayerOutputsAreDifferentiable) {
  common::Rng rng(21);
  const int64_t dim = 4;
  CrossModalAttention caw(dim, /*num_modalities=*/2, /*num_heads=*/1, rng);
  auto modal = ModalInputs(2, /*n=*/2, dim, 22);
  // Only the modal inputs: fused_mid is taken before the FFN and the
  // second LayerNorm, so those parameters legitimately receive no
  // gradient from a mid-only loss.
  std::vector<TensorPtr> inputs(modal.begin(), modal.end());
  desalign::testing::CheckGradients(inputs, [&] {
    auto out = caw.Forward(modal);
    TensorPtr total;
    for (const auto& mid : out.fused_mid) {
      auto term = ops::Sum(ops::Square(mid));
      total = total ? ops::Add(total, term) : term;
    }
    return total;
  });
}

// Randomized shapes for the attention block (modalities x heads).
class CrossModalShapeGradTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CrossModalShapeGradTest, Gradients) {
  auto [num_modalities, num_heads] = GetParam();
  const int64_t dim = 4;  // must be divisible by num_heads
  const uint64_t seed =
      800 + static_cast<uint64_t>(num_modalities * 11 + num_heads);
  common::Rng rng(seed);
  CrossModalAttention caw(dim, num_modalities, num_heads, rng);
  auto modal = ModalInputs(num_modalities, /*n=*/2, dim, seed + 1);
  auto inputs = caw.Parameters();
  for (const auto& m : modal) inputs.push_back(m);
  desalign::testing::CheckGradients(inputs, [&] {
    auto out = caw.Forward(modal);
    TensorPtr total;
    for (const auto& fused : out.fused) {
      auto term = ops::Sum(ops::Square(fused));
      total = total ? ops::Add(total, term) : term;
    }
    return total;
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CrossModalShapeGradTest,
    ::testing::Values(std::make_tuple(2, 1), std::make_tuple(3, 2),
                      std::make_tuple(4, 4)));

}  // namespace
}  // namespace desalign::nn
