#include "nn/serialize.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "align/fusion_model.h"
#include "align/metrics.h"
#include "common/fault_injection.h"
#include "common/rng.h"
#include "kg/synthetic.h"
#include "nn/checkpoint.h"
#include "tensor/init.h"

namespace desalign::nn {
namespace {

using tensor::Tensor;
using tensor::TensorPtr;

class SerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("desalign_ckpt_" + std::to_string(::getpid()) + ".bin"))
                .string();
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  std::string path_;
};

// Length of the on-disk magic "DESALIGNPARAMS1"; the count field follows.
constexpr uint64_t kMagicLenForTest = 15;

std::vector<TensorPtr> MakeParams(uint64_t seed) {
  common::Rng rng(seed);
  std::vector<TensorPtr> params = {
      Tensor::Create(3, 4, true),
      Tensor::Create(1, 7, true),
      Tensor::Create(5, 5, true),
  };
  for (auto& p : params) tensor::FillNormal(*p, rng);
  return params;
}

TEST_F(SerializeTest, RoundTripRestoresExactValues) {
  auto original = MakeParams(1);
  ASSERT_TRUE(SaveParameters(original, path_).ok());
  auto restored = MakeParams(2);  // different values, same shapes
  ASSERT_TRUE(LoadParameters(restored, path_).ok());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(restored[i]->data(), original[i]->data());
  }
}

TEST_F(SerializeTest, SaveFaultSiteSurfacesAsStatus) {
  auto params = MakeParams(3);
  ASSERT_TRUE(
      common::FaultInjector::Global().Configure("params.write:fail").ok());
  EXPECT_FALSE(SaveParameters(params, path_).ok());
  common::FaultInjector::Global().Clear();
  ASSERT_TRUE(SaveParameters(params, path_).ok());
  auto restored = MakeParams(4);
  ASSERT_TRUE(LoadParameters(restored, path_).ok());
  EXPECT_EQ(restored[0]->data(), params[0]->data());
}

TEST_F(SerializeTest, CountMismatchFails) {
  auto params = MakeParams(3);
  ASSERT_TRUE(SaveParameters(params, path_).ok());
  params.pop_back();
  auto status = LoadParameters(params, path_);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), common::StatusCode::kInvalidArgument);
}

TEST_F(SerializeTest, ShapeMismatchFailsWithoutMutation) {
  auto params = MakeParams(4);
  ASSERT_TRUE(SaveParameters(params, path_).ok());
  auto wrong = MakeParams(5);
  wrong[1] = Tensor::Create(2, 7, true);
  const auto before = wrong[0]->data();
  ASSERT_FALSE(LoadParameters(wrong, path_).ok());
  EXPECT_EQ(wrong[0]->data(), before);  // no partial load
}

TEST_F(SerializeTest, LastTensorShapeMismatchFailsWithoutMutation) {
  // Regression: an eager loader that copies tensors as it parses would
  // have already overwritten tensors 0 and 1 by the time it notices the
  // LAST tensor's shape is wrong. All shapes must be validated before any
  // data moves.
  auto params = MakeParams(14);
  ASSERT_TRUE(SaveParameters(params, path_).ok());
  auto wrong = MakeParams(15);
  wrong.back() = Tensor::Create(5, 6, true);  // file has 5x5
  const auto before0 = wrong[0]->data();
  const auto before1 = wrong[1]->data();
  ASSERT_FALSE(LoadParameters(wrong, path_).ok());
  EXPECT_EQ(wrong[0]->data(), before0);
  EXPECT_EQ(wrong[1]->data(), before1);
}

TEST_F(SerializeTest, LastTensorShapeMismatchFailsForV2Checkpoints) {
  // Same no-partial-write guarantee on the v2 (checksummed) load path.
  auto params = MakeParams(16);
  ASSERT_TRUE(SaveCheckpoint(
                  [&] {
                    TrainingCheckpoint ckpt;
                    ckpt.tensors = params;
                    return ckpt;
                  }(),
                  path_)
                  .ok());
  auto wrong = MakeParams(17);
  wrong.back() = Tensor::Create(5, 6, true);
  const auto before0 = wrong[0]->data();
  const auto before1 = wrong[1]->data();
  ASSERT_FALSE(LoadParameters(wrong, path_).ok());
  EXPECT_EQ(wrong[0]->data(), before0);
  EXPECT_EQ(wrong[1]->data(), before1);
}

TEST_F(SerializeTest, GarbageFileRejected) {
  std::ofstream(path_) << "definitely not a checkpoint";
  auto params = MakeParams(6);
  auto status = LoadParameters(params, path_);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), common::StatusCode::kIoError);
}

TEST_F(SerializeTest, MissingFileRejected) {
  auto params = MakeParams(7);
  EXPECT_FALSE(LoadParameters(params, path_ + ".nope").ok());
}

TEST_F(SerializeTest, TruncatedFileRejectedWithoutMutation) {
  auto params = MakeParams(8);
  ASSERT_TRUE(SaveParameters(params, path_).ok());
  // Chop the file mid-way through the last tensor's payload.
  const auto full = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, full - 17);
  auto fresh = MakeParams(9);
  const auto before = fresh[2]->data();
  auto status = LoadParameters(fresh, path_);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), common::StatusCode::kIoError);
  EXPECT_EQ(fresh[2]->data(), before);  // staged load left params intact
}

TEST_F(SerializeTest, LoadAllParametersRoundTrip) {
  auto params = MakeParams(10);
  ASSERT_TRUE(SaveParameters(params, path_).ok());
  auto loaded = LoadAllParameters(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    EXPECT_EQ(loaded.value()[i]->rows(), params[i]->rows());
    EXPECT_EQ(loaded.value()[i]->cols(), params[i]->cols());
    EXPECT_EQ(loaded.value()[i]->data(), params[i]->data());
  }
}

TEST_F(SerializeTest, LoadAllParametersRejectsTruncation) {
  auto params = MakeParams(11);
  ASSERT_TRUE(SaveParameters(params, path_).ok());
  const auto full = std::filesystem::file_size(path_);
  for (const auto keep : {full - 3, full / 2, kMagicLenForTest + 4}) {
    std::filesystem::resize_file(path_, keep);
    auto loaded = LoadAllParameters(path_);
    ASSERT_FALSE(loaded.ok()) << "kept " << keep << " bytes";
    EXPECT_EQ(loaded.status().code(), common::StatusCode::kIoError);
  }
}

TEST_F(SerializeTest, LoadAllParametersRejectsCorruptHeader) {
  auto params = MakeParams(12);
  ASSERT_TRUE(SaveParameters(params, path_).ok());
  // Overwrite the tensor count with an absurd value; the loader must
  // refuse rather than attempt a giant allocation.
  std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(static_cast<std::streamoff>(kMagicLenForTest));
  const int64_t absurd = int64_t{1} << 60;
  f.write(reinterpret_cast<const char*>(&absurd), sizeof(absurd));
  f.close();
  auto loaded = LoadAllParameters(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), common::StatusCode::kIoError);
}

TEST_F(SerializeTest, LoadAllParametersRejectsGarbage) {
  std::ofstream(path_) << "garbage";
  EXPECT_FALSE(LoadAllParameters(path_).ok());
  EXPECT_FALSE(LoadAllParameters(path_ + ".nope").ok());
}

TEST_F(SerializeTest, FusionModelCheckpointReproducesDecode) {
  kg::SyntheticSpec spec;
  spec.num_entities = 100;
  spec.seed = 21;
  auto data = kg::GenerateSyntheticPair(spec);

  align::FusionModelConfig cfg;
  cfg.dim = 16;
  cfg.epochs = 15;
  align::FusionAlignModel trained(cfg);
  trained.Fit(data);
  auto expected = trained.DecodeSimilarity(data);
  ASSERT_TRUE(trained.SaveCheckpoint(path_).ok());

  align::FusionAlignModel restored(cfg);
  // Loading before Warmup is a precondition failure.
  EXPECT_EQ(restored.LoadCheckpoint(path_).code(),
            common::StatusCode::kFailedPrecondition);
  restored.Warmup(data);
  ASSERT_TRUE(restored.LoadCheckpoint(path_).ok());
  auto actual = restored.DecodeSimilarity(data);
  ASSERT_EQ(actual->size(), expected->size());
  for (int64_t i = 0; i < actual->size(); ++i) {
    EXPECT_NEAR(actual->data()[i], expected->data()[i], 1e-6);
  }
}

TEST_F(SerializeTest, SaveBeforePrepareFails) {
  align::FusionModelConfig cfg;
  align::FusionAlignModel model(cfg);
  EXPECT_EQ(model.SaveCheckpoint(path_).code(),
            common::StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace desalign::nn
