#include "nn/serialize.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "align/fusion_model.h"
#include "align/metrics.h"
#include "common/rng.h"
#include "kg/synthetic.h"
#include "tensor/init.h"

namespace desalign::nn {
namespace {

using tensor::Tensor;
using tensor::TensorPtr;

class SerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("desalign_ckpt_" + std::to_string(::getpid()) + ".bin"))
                .string();
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  std::string path_;
};

std::vector<TensorPtr> MakeParams(uint64_t seed) {
  common::Rng rng(seed);
  std::vector<TensorPtr> params = {
      Tensor::Create(3, 4, true),
      Tensor::Create(1, 7, true),
      Tensor::Create(5, 5, true),
  };
  for (auto& p : params) tensor::FillNormal(*p, rng);
  return params;
}

TEST_F(SerializeTest, RoundTripRestoresExactValues) {
  auto original = MakeParams(1);
  ASSERT_TRUE(SaveParameters(original, path_).ok());
  auto restored = MakeParams(2);  // different values, same shapes
  ASSERT_TRUE(LoadParameters(restored, path_).ok());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(restored[i]->data(), original[i]->data());
  }
}

TEST_F(SerializeTest, CountMismatchFails) {
  auto params = MakeParams(3);
  ASSERT_TRUE(SaveParameters(params, path_).ok());
  params.pop_back();
  auto status = LoadParameters(params, path_);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), common::StatusCode::kInvalidArgument);
}

TEST_F(SerializeTest, ShapeMismatchFailsWithoutMutation) {
  auto params = MakeParams(4);
  ASSERT_TRUE(SaveParameters(params, path_).ok());
  auto wrong = MakeParams(5);
  wrong[1] = Tensor::Create(2, 7, true);
  const auto before = wrong[0]->data();
  ASSERT_FALSE(LoadParameters(wrong, path_).ok());
  EXPECT_EQ(wrong[0]->data(), before);  // no partial load
}

TEST_F(SerializeTest, GarbageFileRejected) {
  std::ofstream(path_) << "definitely not a checkpoint";
  auto params = MakeParams(6);
  auto status = LoadParameters(params, path_);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), common::StatusCode::kIoError);
}

TEST_F(SerializeTest, MissingFileRejected) {
  auto params = MakeParams(7);
  EXPECT_FALSE(LoadParameters(params, path_ + ".nope").ok());
}

TEST_F(SerializeTest, FusionModelCheckpointReproducesDecode) {
  kg::SyntheticSpec spec;
  spec.num_entities = 100;
  spec.seed = 21;
  auto data = kg::GenerateSyntheticPair(spec);

  align::FusionModelConfig cfg;
  cfg.dim = 16;
  cfg.epochs = 15;
  align::FusionAlignModel trained(cfg);
  trained.Fit(data);
  auto expected = trained.DecodeSimilarity(data);
  ASSERT_TRUE(trained.SaveCheckpoint(path_).ok());

  align::FusionAlignModel restored(cfg);
  // Loading before Warmup is a precondition failure.
  EXPECT_EQ(restored.LoadCheckpoint(path_).code(),
            common::StatusCode::kFailedPrecondition);
  restored.Warmup(data);
  ASSERT_TRUE(restored.LoadCheckpoint(path_).ok());
  auto actual = restored.DecodeSimilarity(data);
  ASSERT_EQ(actual->size(), expected->size());
  for (int64_t i = 0; i < actual->size(); ++i) {
    EXPECT_NEAR(actual->data()[i], expected->data()[i], 1e-6);
  }
}

TEST_F(SerializeTest, SaveBeforePrepareFails) {
  align::FusionModelConfig cfg;
  align::FusionAlignModel model(cfg);
  EXPECT_EQ(model.SaveCheckpoint(path_).code(),
            common::StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace desalign::nn
