#include "nn/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace desalign::nn {
namespace {

namespace ops = desalign::tensor;
using tensor::Tensor;

TEST(AdamWTest, MinimizesQuadratic) {
  auto x = Tensor::FromData(1, 2, {5.0f, -3.0f}, /*requires_grad=*/true);
  AdamWConfig cfg;
  cfg.lr = 0.1f;
  cfg.weight_decay = 0.0f;
  AdamW opt({x}, cfg);
  for (int step = 0; step < 300; ++step) {
    auto loss = ops::SumSquares(x);
    opt.ZeroGrad();
    loss->Backward();
    opt.Step();
  }
  EXPECT_NEAR(x->data()[0], 0.0f, 1e-2);
  EXPECT_NEAR(x->data()[1], 0.0f, 1e-2);
  EXPECT_EQ(opt.step_count(), 300);
}

TEST(AdamWTest, FirstStepHasMagnitudeLr) {
  // With bias correction, the first Adam step is ~lr in the gradient
  // direction regardless of gradient scale.
  auto x = Tensor::FromData(1, 1, {10.0f}, /*requires_grad=*/true);
  AdamWConfig cfg;
  cfg.lr = 0.5f;
  cfg.weight_decay = 0.0f;
  AdamW opt({x}, cfg);
  auto loss = ops::Scale(ops::Sum(x), 123.0f);  // constant gradient 123
  opt.ZeroGrad();
  loss->Backward();
  opt.Step();
  EXPECT_NEAR(x->data()[0], 10.0f - 0.5f, 1e-3);
}

TEST(AdamWTest, DecoupledWeightDecayShrinksWithoutGradient) {
  auto x = Tensor::FromData(1, 1, {2.0f}, /*requires_grad=*/true);
  AdamWConfig cfg;
  cfg.lr = 0.1f;
  cfg.weight_decay = 0.5f;
  AdamW opt({x}, cfg);
  // Zero gradient but allocated buffer -> only weight decay applies.
  x->grad();
  opt.Step();
  EXPECT_NEAR(x->data()[0], 2.0f - 0.1f * 0.5f * 2.0f, 1e-5);
}

TEST(AdamWTest, SkipsParamsWithoutGradBuffers) {
  auto x = Tensor::FromData(1, 1, {2.0f}, /*requires_grad=*/true);
  AdamWConfig cfg;
  AdamW opt({x}, cfg);
  opt.Step();  // no grad() was ever touched
  EXPECT_FLOAT_EQ(x->data()[0], 2.0f);
}

TEST(CosineWarmupScheduleTest, WarmupRampsLinearly) {
  CosineWarmupSchedule sched(1.0f, 100, 0.2, 0.0f);
  EXPECT_NEAR(sched.LrAt(0), 1.0f / 20.0f, 1e-5);
  EXPECT_NEAR(sched.LrAt(9), 0.5f, 1e-5);
  EXPECT_NEAR(sched.LrAt(19), 1.0f, 1e-5);
}

TEST(CosineWarmupScheduleTest, CosineDecaysToMin) {
  CosineWarmupSchedule sched(1.0f, 100, 0.0, 0.1f);
  EXPECT_NEAR(sched.LrAt(0), 1.0f, 1e-5);
  EXPECT_NEAR(sched.LrAt(100), 0.1f, 1e-5);
  // Midpoint of cosine = average of max and min.
  EXPECT_NEAR(sched.LrAt(50), 0.55f, 1e-3);
  // Monotone decreasing after warmup.
  for (int s = 1; s <= 100; ++s) {
    EXPECT_LE(sched.LrAt(s), sched.LrAt(s - 1) + 1e-6);
  }
}

TEST(ClipGradNormTest, ScalesDownLargeGradients) {
  auto x = Tensor::FromData(1, 2, {0.0f, 0.0f}, /*requires_grad=*/true);
  x->grad()[0] = 3.0f;
  x->grad()[1] = 4.0f;
  const double pre = ClipGradNorm({x}, 1.0);
  EXPECT_NEAR(pre, 5.0, 1e-5);
  EXPECT_NEAR(x->grad()[0], 0.6f, 1e-5);
  EXPECT_NEAR(x->grad()[1], 0.8f, 1e-5);
}

TEST(ClipGradNormTest, LeavesSmallGradientsAlone) {
  auto x = Tensor::FromData(1, 2, {0.0f, 0.0f}, /*requires_grad=*/true);
  x->grad()[0] = 0.3f;
  x->grad()[1] = 0.4f;
  ClipGradNorm({x}, 1.0);
  EXPECT_FLOAT_EQ(x->grad()[0], 0.3f);
  EXPECT_FLOAT_EQ(x->grad()[1], 0.4f);
}

}  // namespace
}  // namespace desalign::nn
