// v3 (dtype-tagged) checkpoint format: round trips for every dtype, the
// read-compat contract (legacy consumers see dequantized fp32), and a
// table-driven corrupt-fixture suite. Because the whole body sits under
// the footer CRC, naive bit flips are caught by the envelope before the
// v3 parser runs; the corruption helper below re-seals the footer after
// each mutation so the per-record guards (unknown dtype id, scale-count
// mismatch, per-array CRC) are what actually reject the file.

#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/fault_injection.h"
#include "common/rng.h"
#include "nn/checkpoint.h"
#include "nn/quant.h"
#include "nn/serialize.h"
#include "tensor/init.h"

namespace desalign::nn {
namespace {

using tensor::Tensor;

// On-disk v3 offsets (see src/nn/checkpoint.cc): 14-byte magic, then the
// body: u32 version | i64 epoch | u32 flags | i64 tensor_count, so the
// first record's dtype byte sits at 14 + 4 + 8 + 4 + 8 = 38. The footer
// is u32 crc(body) | "DCKPTEND" (8 bytes) at the end of the file.
constexpr size_t kMagicLen = 14;
constexpr size_t kFirstDtypeOffset = 38;
constexpr size_t kFirstScaleCountOffset = kFirstDtypeOffset + 1 + 8 + 8;
constexpr size_t kFooterLen = 4 + 8;

class CheckpointV3Test : public ::testing::Test {
 protected:
  void SetUp() override {
    common::FaultInjector::Global().Clear();
    dir_ = std::filesystem::temp_directory_path() /
           ("desalign_ckpt_v3_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "ckpt.dckpt").string();
  }
  void TearDown() override {
    common::FaultInjector::Global().Clear();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::filesystem::path dir_;
  std::string path_;
};

QuantTensor MakeQuant(TensorDtype dtype, int64_t rows, int64_t cols,
                      uint64_t seed) {
  common::Rng rng(seed);
  auto t = Tensor::Create(rows, cols, false);
  for (auto& v : t->data()) v = rng.UniformF(-1.0f, 1.0f);
  auto q = QuantizeTensor(*t, dtype);
  EXPECT_TRUE(q.ok());
  return std::move(q.value());
}

TrainingCheckpoint MakeV3Checkpoint(uint64_t seed) {
  TrainingCheckpoint ckpt;
  ckpt.epoch = 4;
  ckpt.quant_tensors.push_back(MakeQuant(TensorDtype::kInt8, 6, 5, seed));
  ckpt.quant_tensors.push_back(MakeQuant(TensorDtype::kBf16, 3, 7, seed + 1));
  ckpt.quant_tensors.push_back(
      MakeQuant(TensorDtype::kFloat32, 2, 9, seed + 2));
  return ckpt;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream(path, std::ios::binary) << bytes;
}

// Applies `mutate` to the raw bytes, then recomputes the footer CRC so
// only the per-record integrity checks can reject the result.
std::string MutateAndReseal(std::string bytes,
                            const std::function<void(std::string&)>& mutate) {
  mutate(bytes);
  const size_t body_len = bytes.size() - kMagicLen - kFooterLen;
  const uint32_t crc = common::Crc32(bytes.data() + kMagicLen, body_len);
  std::memcpy(bytes.data() + bytes.size() - kFooterLen, &crc, sizeof(crc));
  return bytes;
}

TEST_F(CheckpointV3Test, RoundTripPreservesEveryDtypePayloadBitExactly) {
  const auto saved = MakeV3Checkpoint(3);
  ASSERT_TRUE(SaveCheckpoint(saved, path_).ok());
  EXPECT_TRUE(IsVersionedCheckpoint(path_));
  auto loaded = LoadCheckpoint(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const auto& got = loaded.value();
  EXPECT_EQ(got.epoch, saved.epoch);
  ASSERT_EQ(got.quant_tensors.size(), saved.quant_tensors.size());
  for (size_t i = 0; i < saved.quant_tensors.size(); ++i) {
    const auto& a = saved.quant_tensors[i];
    const auto& b = got.quant_tensors[i];
    EXPECT_EQ(a.dtype, b.dtype);
    EXPECT_EQ(a.rows, b.rows);
    EXPECT_EQ(a.cols, b.cols);
    EXPECT_EQ(a.f32, b.f32);
    EXPECT_EQ(a.codes, b.codes);
    EXPECT_EQ(a.scales, b.scales);
    EXPECT_EQ(a.bf16, b.bf16);
  }
  // The loader also fills the dequantized fp32 view, in record order.
  ASSERT_EQ(got.tensors.size(), saved.quant_tensors.size());
  for (size_t i = 0; i < got.tensors.size(); ++i) {
    const auto expect = DequantizeTensor(saved.quant_tensors[i]);
    EXPECT_EQ(got.tensors[i]->data(), expect->data()) << "tensor " << i;
  }
}

TEST_F(CheckpointV3Test, LegacyEntryPointsSeeDequantizedFp32) {
  const auto saved = MakeV3Checkpoint(4);
  ASSERT_TRUE(SaveCheckpoint(saved, path_).ok());
  auto all = LoadAllParameters(path_);
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  ASSERT_EQ(all.value().size(), saved.quant_tensors.size());
  for (size_t i = 0; i < all.value().size(); ++i) {
    EXPECT_EQ(all.value()[i]->data(),
              DequantizeTensor(saved.quant_tensors[i])->data());
  }
}

TEST_F(CheckpointV3Test, SaveRejectsMixedOrStatefulV3) {
  auto ckpt = MakeV3Checkpoint(5);
  // fp32 tensors alongside quant records is ambiguous: refuse.
  common::Rng rng(6);
  ckpt.tensors.push_back(Tensor::Create(2, 2, false));
  tensor::FillNormal(*ckpt.tensors.back(), rng);
  EXPECT_EQ(SaveCheckpoint(ckpt, path_).code(),
            common::StatusCode::kInvalidArgument);
  // Optimizer / rng / train state cannot ride on a v3 snapshot.
  ckpt = MakeV3Checkpoint(7);
  ckpt.has_train_state = true;
  EXPECT_EQ(SaveCheckpoint(ckpt, path_).code(),
            common::StatusCode::kInvalidArgument);
  // Payload sizes are validated before anything hits disk.
  ckpt = MakeV3Checkpoint(8);
  ckpt.quant_tensors[0].scales.pop_back();
  EXPECT_EQ(SaveCheckpoint(ckpt, path_).code(),
            common::StatusCode::kInvalidArgument);
}

struct CorruptCase {
  const char* name;
  std::function<void(std::string&)> mutate;
  const char* expect_substring;
};

TEST_F(CheckpointV3Test, TableDrivenCorruptionsRejectedWithNamedErrors) {
  ASSERT_TRUE(SaveCheckpoint(MakeV3Checkpoint(9), path_).ok());
  const std::string pristine = ReadFile(path_);
  ASSERT_GT(pristine.size(), kFirstScaleCountOffset + 8);

  const CorruptCase cases[] = {
      {"unknown dtype id",
       [](std::string& b) { b[kFirstDtypeOffset] = 7; },
       "unknown dtype id"},
      {"scale-array length mismatch",
       [](std::string& b) {
         int64_t count = 0;
         std::memcpy(&count, b.data() + kFirstScaleCountOffset,
                     sizeof(count));
         ++count;
         std::memcpy(b.data() + kFirstScaleCountOffset, &count,
                     sizeof(count));
       },
       "does not match rows"},
      {"flipped scale payload byte",
       // First scale float sits right after the scale count.
       [](std::string& b) { b[kFirstScaleCountOffset + 8] ^= 0x40; },
       "scale checksum mismatch"},
      {"flipped code payload byte",
       // Codes follow the 6 scales and their u32 CRC.
       [](std::string& b) {
         b[kFirstScaleCountOffset + 8 + 6 * 4 + 4 + 3] ^= 0x01;
       },
       "checksum mismatch"},
      {"nonzero flags",
       [](std::string& b) { b[kMagicLen + 4 + 8] = 1; },
       "nonzero flags"},
      {"truncated dtype tag",
       // Body cut immediately before the first record: the declared
       // tensor_count can no longer be satisfied.
       [](std::string& b) {
         b.erase(kFirstDtypeOffset, b.size() - kFirstDtypeOffset - kFooterLen);
       },
       "truncated tensor header"},
      {"trailing garbage",
       [](std::string& b) { b.insert(b.size() - kFooterLen, "XYZW"); },
       "trailing bytes"},
  };

  for (const auto& c : cases) {
    WriteFile(path_, MutateAndReseal(pristine, c.mutate));
    auto loaded = LoadCheckpoint(path_);
    ASSERT_FALSE(loaded.ok()) << c.name;
    EXPECT_EQ(loaded.status().code(), common::StatusCode::kIoError) << c.name;
    EXPECT_NE(loaded.status().ToString().find(c.expect_substring),
              std::string::npos)
        << c.name << ": got " << loaded.status().ToString();
  }
  // The pristine bytes still load — the harness itself is sound.
  WriteFile(path_, pristine);
  EXPECT_TRUE(LoadCheckpoint(path_).ok());
}

TEST_F(CheckpointV3Test, RawBitFlipsCaughtByTheEnvelope) {
  ASSERT_TRUE(SaveCheckpoint(MakeV3Checkpoint(10), path_).ok());
  const std::string pristine = ReadFile(path_);
  for (size_t off = 0; off < pristine.size(); off += 11) {
    std::string corrupt = pristine;
    corrupt[off] ^= 1;
    WriteFile(path_, corrupt);
    auto loaded = LoadCheckpoint(path_);
    ASSERT_FALSE(loaded.ok()) << "bit flip at offset " << off;
    EXPECT_EQ(loaded.status().code(), common::StatusCode::kIoError);
  }
}

TEST_F(CheckpointV3Test, TruncationRejectedAtEveryLength) {
  ASSERT_TRUE(SaveCheckpoint(MakeV3Checkpoint(11), path_).ok());
  const auto size = std::filesystem::file_size(path_);
  for (uint64_t keep = 0; keep < size; keep += 7) {
    ASSERT_TRUE(SaveCheckpoint(MakeV3Checkpoint(11), path_).ok());
    std::filesystem::resize_file(path_, keep);
    EXPECT_FALSE(LoadCheckpoint(path_).ok()) << "kept " << keep;
  }
}

TEST_F(CheckpointV3Test, InjectedTornWriteAndReadBitFlipRejected) {
  // The DESALIGN_FAULTS harness exercises the same ckpt.* sites v2 uses.
  ASSERT_TRUE(common::FaultInjector::Global()
                  .Configure("ckpt.write.data:short:100")
                  .ok());
  ASSERT_TRUE(SaveCheckpoint(MakeV3Checkpoint(12), path_).ok());
  common::FaultInjector::Global().Clear();
  EXPECT_FALSE(LoadCheckpoint(path_).ok());

  ASSERT_TRUE(SaveCheckpoint(MakeV3Checkpoint(13), path_).ok());
  ASSERT_TRUE(
      common::FaultInjector::Global().Configure("ckpt.read:bitflip:60").ok());
  EXPECT_FALSE(LoadCheckpoint(path_).ok());  // corrupted in flight
  EXPECT_TRUE(LoadCheckpoint(path_).ok());   // disk copy is fine
}

TEST_F(CheckpointV3Test, V2AndLegacyFilesStillRoundTrip) {
  // v2: a params+state checkpoint written through the untouched path.
  TrainingCheckpoint v2;
  v2.epoch = 2;
  common::Rng rng(14);
  v2.tensors.push_back(Tensor::Create(3, 4, true));
  tensor::FillNormal(*v2.tensors.back(), rng);
  ASSERT_TRUE(SaveCheckpoint(v2, path_).ok());
  auto loaded = LoadCheckpoint(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded.value().quant_tensors.empty());
  EXPECT_EQ(loaded.value().tensors[0]->data(), v2.tensors[0]->data());

  // v2 -> v3 migration: quantize the loaded fp32 tensor and re-save.
  TrainingCheckpoint v3;
  v3.epoch = loaded.value().epoch;
  auto q = QuantizeTensor(*loaded.value().tensors[0], TensorDtype::kInt8);
  ASSERT_TRUE(q.ok());
  v3.quant_tensors.push_back(std::move(q.value()));
  const std::string v3_path = (dir_ / "migrated.dckpt").string();
  ASSERT_TRUE(SaveCheckpoint(v3, v3_path).ok());
  auto migrated = LoadCheckpoint(v3_path);
  ASSERT_TRUE(migrated.ok());
  EXPECT_EQ(migrated.value().quant_tensors[0].codes,
            v3.quant_tensors[0].codes);

  // v1 legacy SaveParameters files load through the same entry point.
  const std::string v1_path = (dir_ / "legacy.dckpt").string();
  std::vector<tensor::TensorPtr> params;
  params.push_back(Tensor::Create(2, 6, true));
  tensor::FillNormal(*params.back(), rng);
  ASSERT_TRUE(SaveParameters(params, v1_path).ok());
  EXPECT_FALSE(IsVersionedCheckpoint(v1_path));
  auto legacy = LoadCheckpoint(v1_path);
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(legacy.value().tensors[0]->data(), params[0]->data());
}

}  // namespace
}  // namespace desalign::nn
