#include "nn/layers.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "testing/grad_check.h"

namespace desalign::nn {
namespace {

namespace ops = desalign::tensor;
using tensor::Tensor;
using tensor::TensorPtr;

TEST(LinearTest, ForwardMatchesManual) {
  common::Rng rng(1);
  Linear fc(2, 2, rng);
  auto x = Tensor::FromData(1, 2, {1.0f, 2.0f});
  auto y = fc.Forward(x);
  const auto& w = *fc.weight();
  // bias starts at zero.
  EXPECT_NEAR(y->At(0, 0), 1.0f * w.At(0, 0) + 2.0f * w.At(1, 0), 1e-5);
  EXPECT_NEAR(y->At(0, 1), 1.0f * w.At(0, 1) + 2.0f * w.At(1, 1), 1e-5);
}

TEST(LinearTest, GradientsFlowToParameters) {
  common::Rng rng(2);
  Linear fc(3, 2, rng);
  auto x = Tensor::FromData(2, 3, {1, 2, 3, 4, 5, 6});
  auto loss = ops::Sum(ops::Square(fc.Forward(x)));
  loss->Backward();
  for (const auto& p : fc.Parameters()) {
    ASSERT_TRUE(p->has_grad());
    float norm = 0.0f;
    for (float g : p->grad()) norm += g * g;
    EXPECT_GT(norm, 0.0f);
  }
}

graph::Graph::DirectedEdges TriangleEdges() {
  graph::Graph g(3, {{0, 1}, {1, 2}, {0, 2}});
  return g.MessagePassingEdges(true);
}

TEST(GatLayerTest, OutputShape) {
  common::Rng rng(3);
  GatLayer gat(8, 2, rng);
  auto x = Tensor::Create(3, 8);
  tensor::FillNormal(*x, rng);
  auto edges = TriangleEdges();
  auto y = gat.Forward(x, edges, 3);
  EXPECT_EQ(y->rows(), 3);
  EXPECT_EQ(y->cols(), 8);
}

TEST(GatLayerTest, AttentionIsConvexCombinationOfTransformedInputs) {
  // With identity diagonal weight, the GAT output of each node is a convex
  // combination of neighbour features, so each output coordinate lies in
  // the min/max range over the node's in-neighbourhood.
  common::Rng rng(4);
  GatLayer gat(4, 1, rng);
  auto x = Tensor::Create(3, 4);
  tensor::FillNormal(*x, rng);
  auto edges = TriangleEdges();  // fully connected incl. self-loops
  auto y = gat.Forward(x, edges, 3);
  for (int64_t j = 0; j < 4; ++j) {
    float lo = std::min({x->At(0, j), x->At(1, j), x->At(2, j)});
    float hi = std::max({x->At(0, j), x->At(1, j), x->At(2, j)});
    for (int64_t i = 0; i < 3; ++i) {
      EXPECT_GE(y->At(i, j), lo - 1e-5);
      EXPECT_LE(y->At(i, j), hi + 1e-5);
    }
  }
}

TEST(GatLayerTest, GradCheckThroughAttention) {
  common::Rng rng(5);
  GatLayer gat(4, 2, rng);
  auto x = Tensor::Create(3, 4, /*requires_grad=*/true);
  tensor::FillNormal(*x, rng);
  auto edges = TriangleEdges();
  auto inputs = gat.Parameters();
  inputs.push_back(x);
  desalign::testing::CheckGradients(inputs, [&] {
    return ops::Sum(ops::Square(gat.Forward(x, edges, 3)));
  });
}

TEST(GatEncoderTest, StacksLayers) {
  common::Rng rng(6);
  GatEncoder enc(6, 2, 2, rng);
  auto x = Tensor::Create(3, 6);
  tensor::FillNormal(*x, rng);
  auto edges = TriangleEdges();
  auto y = enc.Forward(x, edges, 3);
  EXPECT_EQ(y->rows(), 3);
  EXPECT_EQ(y->cols(), 6);
  // Two layers, each with 1 diag + 2*2 attention params.
  EXPECT_EQ(enc.Parameters().size(), 2u * 5u);
}

std::vector<TensorPtr> FourModalInputs(int64_t n, int64_t d, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<TensorPtr> inputs;
  for (int m = 0; m < 4; ++m) {
    auto t = Tensor::Create(n, d);
    tensor::FillNormal(*t, rng);
    inputs.push_back(t);
  }
  return inputs;
}

TEST(CrossModalAttentionTest, OutputShapesAndConfidenceSimplex) {
  common::Rng rng(7);
  CrossModalAttention caw(8, 4, 2, rng);
  auto inputs = FourModalInputs(5, 8, 8);
  auto out = caw.Forward(inputs);
  ASSERT_EQ(out.fused.size(), 4u);
  ASSERT_EQ(out.fused_mid.size(), 4u);
  for (const auto& f : out.fused) {
    EXPECT_EQ(f->rows(), 5);
    EXPECT_EQ(f->cols(), 8);
  }
  ASSERT_TRUE(out.confidence != nullptr);
  EXPECT_EQ(out.confidence->rows(), 5);
  EXPECT_EQ(out.confidence->cols(), 4);
  for (int64_t i = 0; i < 5; ++i) {
    float sum = 0.0f;
    for (int64_t m = 0; m < 4; ++m) {
      const float w = out.confidence->At(i, m);
      EXPECT_GT(w, 0.0f);
      sum += w;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-4);
  }
}

TEST(CrossModalAttentionTest, GradientsReachAllParameters) {
  common::Rng rng(9);
  CrossModalAttention caw(4, 4, 1, rng);
  auto inputs = FourModalInputs(3, 4, 10);
  auto out = caw.Forward(inputs);
  TensorPtr loss;
  for (const auto& f : out.fused) {
    auto term = ops::Sum(ops::Square(f));
    loss = loss ? ops::Add(loss, term) : term;
  }
  loss = ops::Add(loss, ops::Sum(ops::Square(out.confidence)));
  loss->Backward();
  for (const auto& p : caw.Parameters()) {
    ASSERT_TRUE(p->has_grad());
  }
}

TEST(CrossModalAttentionTest, ConfidenceReactsToInformativeModality) {
  // If one modality is pure zeros its keys attract no structured attention;
  // check confidences are not degenerate (no NaN, proper simplex).
  common::Rng rng(11);
  CrossModalAttention caw(4, 4, 1, rng);
  auto inputs = FourModalInputs(6, 4, 12);
  inputs[2] = Tensor::Zeros(6, 4);
  auto out = caw.Forward(inputs);
  for (float v : out.confidence->data()) {
    EXPECT_FALSE(std::isnan(v));
  }
}

}  // namespace
}  // namespace desalign::nn
