// Fixture: a pragma naming rule A must not silence rule B on the same
// line — this wall-clock violation carries a banned-random allowance.
#include <ctime>

long StillFlagged() {
  return time(nullptr);  // desalign-lint: allow(banned-random) wrong rule; LINT-EXPECT: wall-clock
}
