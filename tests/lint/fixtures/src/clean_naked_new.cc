// Fixture: RAII ownership and the static-leak idiom are both clean.
#include <memory>

struct Widget {
  int value = 0;
};

Widget& GlobalWidget() {
  static Widget& w = *new Widget();
  return w;
}

std::unique_ptr<Widget> MakeWidget() {
  return std::make_unique<Widget>();
}
