// Fixture: seeded missing-fault-site violation — a writer with no
// FaultInjector::OnSite hook anywhere in the file.
#include <fstream>
#include <string>

bool WriteBlob(const std::string& path, const std::string& payload) {
  std::ofstream out(path);  // LINT-EXPECT: missing-fault-site
  out << payload;
  return static_cast<bool>(out);
}
