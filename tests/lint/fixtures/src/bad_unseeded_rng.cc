// Fixture: seeded unseeded-rng violation.
#include <random>

int DefaultSeededDraw() {
  std::mt19937 gen;  // LINT-EXPECT: unseeded-rng
  return static_cast<int>(gen());
}
