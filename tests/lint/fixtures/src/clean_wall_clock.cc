// Fixture: steady_clock (via Stopwatch) is the sanctioned timer.
#include <chrono>

double MonotonicSeconds() {
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}
