// Fixture: pragma-suppressed float-atomic.
#include <atomic>

struct ObservabilityOnlyGauge {
  std::atomic<double> value{0.0};  // desalign-lint: allow(float-atomic) export-only
};
