// Fixture: solver timing done right — steady_clock (monotonic, the
// sanctioned timer) for min-of-repeats measurement, no wall-clock reads.
#include <chrono>
#include <cstdint>

int64_t MinRepeatNs(int repeats) {
  int64_t best = INT64_MAX;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto t1 = std::chrono::steady_clock::now();
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
    if (ns < best) best = ns;
  }
  return best;
}
