// Fixture: a tuner that stamps its find-db from the wall clock without the
// pragma. Library code (src/tensor/) reading time() breaks replayable runs,
// so the rule must fire even though the call only feeds a provenance field.
#include <ctime>

long TunedAtStamp() {
  return time(nullptr);  // LINT-EXPECT: wall-clock
}
