// Fixture: the tuner's sanctioned exception — the find-db's tuned_at_unix
// provenance stamp is a deliberate wall-clock read (it records WHEN the
// machine was tuned and is never selected on), suppressed via the named
// pragma exactly as src/tensor/kernels/solver/tuner.cc does.
#include <ctime>

long FindDbProvenanceStamp() {
  return time(nullptr);  // desalign-lint: allow(wall-clock) tuned_at stamp
}
