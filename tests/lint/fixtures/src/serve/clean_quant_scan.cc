// Fixture: the deterministic shape quantized scanning takes — integer
// accumulation (associative, so any ISA or chunking gives the same sum)
// plus a seeded engine for any sampling, with per-thread partial results
// merged in a fixed order instead of racing on a shared float.
#include <cstdint>
#include <random>
#include <vector>

int64_t DotCodes(const int8_t* a, const int8_t* b, int64_t d) {
  int32_t sum = 0;
  for (int64_t c = 0; c < d; ++c) {
    sum += static_cast<int32_t>(a[c]) * static_cast<int32_t>(b[c]);
  }
  return sum;
}

std::vector<int64_t> SampleRowsSeeded(int64_t rows, int64_t want,
                                      uint64_t seed) {
  std::mt19937_64 gen(seed);
  std::vector<int64_t> picks;
  for (int64_t i = 0; i < want; ++i) {
    picks.push_back(static_cast<int64_t>(gen() % static_cast<uint64_t>(rows)));
  }
  return picks;
}
