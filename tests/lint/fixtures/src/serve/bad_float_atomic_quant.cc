// Fixture: an int8 scorer accumulating its fp32 re-rank scores into an
// atomic double across worker threads — the interleaving-dependent float
// accumulation that would make quantized retrieval results vary run to
// run, exactly what the re-rank's per-query heaps exist to avoid.
#include <atomic>
#include <cstdint>

struct QuantScanAccumulator {
  std::atomic<float> rerank_score_sum{0.0f};  // LINT-EXPECT: float-atomic
  std::atomic<int64_t> candidates_scanned{0};
};
