// Fixture: a quantization calibrator sampling rows through a
// default-constructed engine. Two runs over the same fp32 table would
// pick different sample sets, produce different scales, and break the
// bit-exact Quantize/Save/Load round trip the serving tests assert.
#include <cstdint>
#include <random>
#include <vector>

std::vector<int64_t> SampleCalibrationRows(int64_t rows, int64_t want) {
  std::mt19937_64 gen;  // LINT-EXPECT: unseeded-rng
  std::vector<int64_t> picks;
  for (int64_t i = 0; i < want; ++i) {
    picks.push_back(static_cast<int64_t>(gen() % static_cast<uint64_t>(rows)));
  }
  return picks;
}
