// Fixture: pragma-suppressed banned-random (e.g. an interop shim).
#include <cstdlib>

int SuppressedDraw() {
  return rand() % 7;  // desalign-lint: allow(banned-random) interop shim
}
