// Fixture: pragma-suppressed wall-clock.
#include <ctime>

long SuppressedWallClock() {
  return time(nullptr);  // desalign-lint: allow(wall-clock) log timestamp
}
