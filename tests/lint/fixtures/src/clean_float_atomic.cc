// Fixture: integer atomics are deterministic under any interleaving.
#include <atomic>
#include <cstdint>

struct Counter {
  std::atomic<int64_t> count{0};
};
