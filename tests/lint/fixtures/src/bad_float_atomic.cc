// Fixture: seeded float-atomic violation.
#include <atomic>

struct RacyAccumulator {
  std::atomic<double> sum{0.0};  // LINT-EXPECT: float-atomic
};
