// Fixture: seeded unordered-iteration violation.
#include <string>
#include <unordered_map>

std::string SerializeUnstably(const std::unordered_map<int, int>& ignored) {
  std::unordered_map<int, int> table;
  std::string out;
  for (const auto& entry : table) {  // LINT-EXPECT: unordered-iteration
    out += std::to_string(entry.first);
  }
  return out;
}
