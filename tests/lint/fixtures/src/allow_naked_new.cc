// Fixture: pragma-suppressed naked-new.
struct Arena {
  void* Allocate();
};

int* PlacementStyle(Arena& arena) {
  return new (arena.Allocate()) int(7);  // desalign-lint: allow(naked-new) arena placement
}
