// Fixture: seeded wall-clock violation (non-CLI path).
#include <ctime>

long WallClockSeed() {
  return time(nullptr);  // LINT-EXPECT: wall-clock
}
