// Fixture: the sanctioned alternative to rand()/random_device.
#include "common/rng.h"

double ReproducibleDraw(desalign::common::Rng& rng) {
  return rng.Uniform();
}
