// Fixture: wall-clock reads are allowed under src/cli/ — run banners and
// report timestamps are CLI concerns, not library behaviour.
#include <ctime>

long CliTimestamp() {
  return time(nullptr);
}
