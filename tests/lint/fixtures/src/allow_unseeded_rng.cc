// Fixture: pragma-suppressed unseeded-rng.
#include <random>

int SuppressedDefaultSeed() {
  std::mt19937 gen;  // desalign-lint: allow(unseeded-rng) deserialize target
  return static_cast<int>(gen());
}
