// Fixture: pragma-suppressed wall-clock read inside a clock implementation
// — the one audited escape hatch for code that genuinely needs calendar
// time (e.g. stamping a checkpoint's provenance field).
#include <chrono>

long CalendarStampMs() {
  const auto now = std::chrono::system_clock::now();  // desalign-lint: allow(wall-clock) provenance stamp
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             now.time_since_epoch())
      .count();
}
