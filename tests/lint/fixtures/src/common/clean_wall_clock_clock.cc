// Fixture: the sanctioned shape of a real-clock implementation — the same
// shape as src/common/clock.h's RealClock. steady_clock is monotonic, so
// deadlines and co-batch windows computed from it never jump; the
// wall-clock rule must stay silent here.
#include <chrono>

struct MonotonicBackedClock {
  std::chrono::steady_clock::time_point Now() const {
    return std::chrono::steady_clock::now();
  }
  double MillisSince(std::chrono::steady_clock::time_point start) const {
    return std::chrono::duration<double, std::milli>(Now() - start).count();
  }
};
