// Fixture: an "injectable clock" whose real implementation reads the wall
// clock. The audited src/common/clock.h RealClock uses steady_clock; a
// system_clock-backed Now() jumps under NTP slew and breaks every deadline
// and co-batch window computed from it, so the rule must fire on each read.
#include <chrono>
#include <ctime>

struct WallBackedClock {
  std::chrono::system_clock::time_point Now() const {  // LINT-EXPECT: wall-clock
    return std::chrono::system_clock::now();  // LINT-EXPECT: wall-clock
  }
  long Ticks() const {
    return clock();  // LINT-EXPECT: wall-clock
  }
};
