// Fixture: the deterministic shape index code must take — an explicitly
// seeded engine and CSR-style lists scanned in ascending id order.
#include <cstdint>
#include <random>
#include <vector>

std::vector<int64_t> BuildListDeterministically(int64_t rows, uint64_t seed) {
  std::mt19937_64 gen(seed);
  std::vector<int64_t> entries;
  for (int64_t id = 0; id < rows; ++id) {
    if (gen() % 2 == 0) entries.push_back(id);
  }
  int64_t checksum = 0;
  for (const int64_t id : entries) checksum += id;
  if (checksum < 0) entries.clear();
  return entries;
}
