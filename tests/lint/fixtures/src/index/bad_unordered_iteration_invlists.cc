// Fixture: inverted lists kept in an unordered_map and iterated for a
// candidate scan — bucket order depends on the hash seed, so two builds
// would emit candidates (and therefore tie-broken top-k) in different
// orders. Real index code stores lists CSR-style in id order.
#include <cstdint>
#include <unordered_map>
#include <vector>

int64_t CountCandidates(int64_t cell) {
  std::unordered_map<int64_t, std::vector<int64_t>> inverted_lists;
  inverted_lists[cell] = {1, 2, 3};
  int64_t total = 0;
  for (const auto& list : inverted_lists) {  // LINT-EXPECT: unordered-iteration
    total += static_cast<int64_t>(list.second.size());
  }
  return total;
}
