// Fixture: a k-means initializer drawing centroid rows from a
// default-constructed engine — the exact bug that would make an IVF index
// non-reproducible across builds of the same table.
#include <cstdint>
#include <random>
#include <vector>

std::vector<int64_t> PickInitialCentroids(int64_t rows, int64_t k) {
  std::mt19937_64 gen;  // LINT-EXPECT: unseeded-rng
  std::vector<int64_t> picks;
  for (int64_t i = 0; i < k; ++i) {
    picks.push_back(static_cast<int64_t>(gen() % static_cast<uint64_t>(rows)));
  }
  return picks;
}
