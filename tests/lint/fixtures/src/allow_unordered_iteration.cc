// Fixture: pragma-suppressed unordered-iteration.
#include <unordered_set>

int CountOnly() {
  std::unordered_set<int> seen;
  int n = 0;
  for (int v : seen) n += v > 0 ? 1 : 1;  // desalign-lint: allow(unordered-iteration) order-free reduction
  return n;
}
