// Fixture: the same writer with a registered fault site is clean.
#include <fstream>
#include <string>

#include "common/fault_injection.h"

bool WriteBlob(const std::string& path, const std::string& payload) {
  if (desalign::common::FaultInjector::Global().OnSite("fixture.write")) {
    return false;
  }
  std::ofstream out(path);
  out << payload;
  return static_cast<bool>(out);
}
