// Fixture: explicit seed satisfies unseeded-rng.
#include <random>

int SeededDraw(unsigned seed) {
  std::mt19937 gen(seed);
  std::mt19937_64 gen64{seed};
  return static_cast<int>(gen() + gen64());
}
