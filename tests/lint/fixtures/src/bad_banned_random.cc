// Fixture: seeded banned-random violation (scanned, never compiled).
#include <cstdlib>
#include <random>

int UnreproducibleDraw() {
  return rand() % 7;  // LINT-EXPECT: banned-random
}
