// Fixture: pragma-suppressed missing-fault-site.
#include <fstream>
#include <string>

bool WriteScratch(const std::string& path) {
  std::ofstream out(path);  // desalign-lint: allow(missing-fault-site) debug scratch file
  return static_cast<bool>(out);
}
