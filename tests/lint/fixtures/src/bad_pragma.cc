// Fixture: a pragma naming an unknown rule is itself a finding.
int Fine() {
  return 7;  // desalign-lint: allow(no-such-rule) typo; LINT-EXPECT: bad-pragma
}
