// Fixture: lookups into unordered containers are fine; only iteration
// order is implementation-defined.
#include <map>
#include <string>
#include <unordered_map>

std::string SerializeStably() {
  std::unordered_map<int, int> lookup;
  std::map<int, int> ordered;
  std::string out;
  if (lookup.find(3) != lookup.end()) out += "hit";
  for (const auto& entry : ordered) {
    out += std::to_string(entry.first);
  }
  return out;
}
