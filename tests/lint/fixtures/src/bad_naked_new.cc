// Fixture: seeded naked-new violation.
void LeakProne() {
  int* p = new int(7); delete p;  // LINT-EXPECT: naked-new
}
