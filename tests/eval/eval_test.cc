#include <sstream>

#include <gtest/gtest.h>

#include "eval/harness.h"
#include "common/table.h"
#include "kg/synthetic.h"

namespace desalign::eval {
namespace {

using common::Pct;
using common::Secs;
using common::TablePrinter;

TEST(TablePrinterTest, AlignsColumnsAndPads) {
  TablePrinter table({"A", "LongHeader"});
  table.AddRow({"xx", "1"});
  table.AddRow({"y"});  // short rows are padded
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| A  | LongHeader |"), std::string::npos);
  EXPECT_NE(out.find("| xx | 1          |"), std::string::npos);
  EXPECT_NE(out.find("| y  |            |"), std::string::npos);
}

TEST(TablePrinterTest, SeparatorRendersAsRule) {
  TablePrinter table({"H"});
  table.AddRow({"a"});
  table.AddSeparator();
  table.AddRow({"b"});
  std::ostringstream os;
  table.Print(os);
  // header rule + post-header + separator + trailing = 4 rules.
  const std::string out = os.str();
  size_t rules = 0;
  size_t pos = 0;
  while ((pos = out.find("+---", pos)) != std::string::npos) {
    ++rules;
    pos += 4;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(FormattersTest, PctAndSecs) {
  EXPECT_EQ(Pct(0.4712), "47.1");
  EXPECT_EQ(Pct(1.0), "100.0");
  EXPECT_EQ(Secs(1.234), "1.23s");
}

TEST(HarnessTest, MethodRegistries) {
  auto prominent = ProminentMethods();
  ASSERT_EQ(prominent.size(), 4u);
  EXPECT_EQ(prominent[0].name, "EVA");
  EXPECT_EQ(prominent[3].name, "DESAlign");
  auto all = AllBasicMethods();
  ASSERT_EQ(all.size(), 10u);
  EXPECT_EQ(all[0].name, "TransE");
  EXPECT_EQ(all[1].name, "IPTransE");
  EXPECT_EQ(all[2].name, "PoE");
  EXPECT_EQ(all[3].name, "GCN-align");
  EXPECT_EQ(all[4].name, "AttrGNN");
  EXPECT_EQ(all[5].name, "MMEA");
  EXPECT_EQ(all.back().name, "DESAlign");
}

TEST(HarnessTest, GlobalSettingsAffectFactories) {
  auto& settings = GlobalHarnessSettings();
  const auto saved = settings;
  settings.dim = 8;
  settings.epochs = 3;

  kg::SyntheticSpec spec;
  spec.num_entities = 60;
  spec.seed = 5;
  auto data = kg::GenerateSyntheticPair(spec);
  // A 3-epoch run at dim 8 must finish quickly and produce metrics.
  auto result = RunCell(ProminentMethods()[2], data, /*seed=*/1);
  EXPECT_GE(result.metrics.h_at_1, 0.0);
  EXPECT_LT(result.train_seconds, 10.0);

  settings = saved;
}

TEST(HarnessTest, RunCellIterativeFallsBackForNonFusionMethods) {
  kg::SyntheticSpec spec;
  spec.num_entities = 60;
  spec.seed = 6;
  auto data = kg::GenerateSyntheticPair(spec);
  auto& settings = GlobalHarnessSettings();
  const auto saved = settings;
  settings.epochs = 3;
  settings.dim = 8;
  // TransE is not a fusion model; iterative mode must not crash.
  auto result = RunCell(AllBasicMethods()[0], data, 1, /*iterative=*/true);
  EXPECT_GE(result.metrics.mrr, 0.0);
  settings = saved;
}

}  // namespace
}  // namespace desalign::eval
