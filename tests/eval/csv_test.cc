#include "eval/csv.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "common/fault_injection.h"

namespace desalign::eval {
namespace {

TEST(CsvEscapeTest, PlainFieldsPassThrough) {
  EXPECT_EQ(CsvEscape("abc"), "abc");
  EXPECT_EQ(CsvEscape("0.471"), "0.471");
}

TEST(CsvEscapeTest, QuotesCommasNewlines) {
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvRecorderTest, HeaderFollowsFirstRowOrder) {
  CsvRecorder rec;
  rec.AddRow({{"b", "2"}, {"a", "1"}});  // map iterates a, b
  rec.AddRow({{"a", "3"}, {"c", "4"}});
  const std::string out = rec.ToString();
  EXPECT_EQ(out, "a,b,c\n1,2,\n3,,4\n");
}

TEST(CsvRecorderTest, AddResultColumns) {
  CsvRecorder rec;
  align::EvalResult result;
  result.metrics.h_at_1 = 0.5;
  result.metrics.mrr = 0.6;
  result.train_seconds = 1.25;
  rec.AddResult("DESAlign", "FBDB15K", result, {{"image_ratio", "0.3"}});
  const std::string out = rec.ToString();
  EXPECT_NE(out.find("method"), std::string::npos);
  EXPECT_NE(out.find("DESAlign"), std::string::npos);
  EXPECT_NE(out.find("0.5000"), std::string::npos);
  EXPECT_NE(out.find("image_ratio"), std::string::npos);
  EXPECT_EQ(rec.num_rows(), 1u);
}

TEST(CsvRecorderTest, WriteFileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("desalign_csv_" + std::to_string(::getpid()) + ".csv");
  CsvRecorder rec;
  rec.AddRow({{"x", "1"}});
  ASSERT_TRUE(rec.WriteFile(path.string()).ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "x\n1\n");
  std::filesystem::remove(path);
}

TEST(CsvRecorderTest, WriteFileFaultSiteSurfacesAsStatus) {
  ASSERT_TRUE(common::FaultInjector::Global().Configure("csv.write:fail").ok());
  CsvRecorder rec;
  rec.AddRow({{"a", "1"}});
  const auto path = std::filesystem::temp_directory_path() /
                    ("desalign_csv_fault_" + std::to_string(::getpid()));
  EXPECT_FALSE(rec.WriteFile(path.string()).ok());
  EXPECT_FALSE(std::filesystem::exists(path));
  common::FaultInjector::Global().Clear();
  EXPECT_TRUE(rec.WriteFile(path.string()).ok());
  std::filesystem::remove(path);
}

TEST(CsvRecorderTest, WriteFileBadPathFails) {
  CsvRecorder rec;
  rec.AddRow({{"x", "1"}});
  EXPECT_FALSE(rec.WriteFile("/nonexistent_dir_zzz/file.csv").ok());
}

}  // namespace
}  // namespace desalign::eval
