// TSan stress for hot reload: query threads retrieving through
// TopKRetriever (and raw Snapshot readers) race a main thread that loops
// EmbeddingStore::Reload across two valid checkpoints of different row
// counts plus a corrupt file. The snapshot-swap design means every query
// must observe exactly one coherent table — fully-old or fully-new, never
// a mix — and the corrupt reload must fail without disturbing readers.

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "serve/embedding_store.h"
#include "serve/topk.h"

namespace desalign::serve {
namespace {

constexpr int64_t kDim = 16;
constexpr int64_t kRowsA = 512;
constexpr int64_t kRowsB = 768;
constexpr int64_t kTopK = 8;

std::vector<float> RandomRows(int64_t rows, int64_t dim, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<float> data(static_cast<size_t>(rows * dim));
  for (auto& v : data) v = rng.UniformF(-1.0f, 1.0f);
  return data;
}

std::string TempPath(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("desalign_reload_race_" + tag + "_" + std::to_string(::getpid()) +
           ".ckpt"))
      .string();
}

TEST(ReloadRaceTest, QueriesRacingReloadSeeOneCoherentTable) {
  const std::string path_a = TempPath("a");
  const std::string path_b = TempPath("b");
  const std::string path_bad = TempPath("bad");

  const auto store_a =
      EmbeddingStore::FromRows(kRowsA, kDim, RandomRows(kRowsA, kDim, 11));
  const auto store_b =
      EmbeddingStore::FromRows(kRowsB, kDim, RandomRows(kRowsB, kDim, 12));
  ASSERT_TRUE(store_a.Save(path_a).ok());
  ASSERT_TRUE(store_b.Save(path_b).ok());
  std::ofstream(path_bad, std::ios::binary)
      << "definitely not a valid checkpoint";

  EmbeddingStore store(store_a);

  std::atomic<bool> stop{false};
  std::atomic<int64_t> queries_served{0};
  std::vector<std::thread> readers;

  // Retriever-path readers: every result must be internally consistent
  // with exactly one of the two valid tables.
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&store, &stop, &queries_served, t] {
      common::ThreadPool pool(1);
      TopKOptions options;
      options.pool = &pool;
      const TopKRetriever retriever(&store, options);
      common::Rng rng(100 + static_cast<uint64_t>(t));
      std::vector<float> query(static_cast<size_t>(kDim));
      while (!stop.load(std::memory_order_relaxed)) {
        for (auto& v : query) v = rng.UniformF(-1.0f, 1.0f);
        const auto results = retriever.Retrieve(query.data(), 1, kTopK);
        ASSERT_EQ(results.size(), 1u);
        const auto& r = results[0];
        ASSERT_EQ(r.ids.size(), static_cast<size_t>(kTopK));
        ASSERT_EQ(r.scores.size(), r.ids.size());
        for (size_t i = 0; i < r.ids.size(); ++i) {
          ASSERT_GE(r.ids[i], 0);
          ASSERT_LT(r.ids[i], kRowsB);  // max of the two tables
          if (i > 0) {
            ASSERT_LE(r.scores[i], r.scores[i - 1]);
          }
        }
        queries_served.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Raw snapshot readers: a snapshot's size/dim/data must agree with each
  // other for the snapshot's whole lifetime even while reloads swap the
  // current table underneath.
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&store, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        const EmbeddingSnapshot snap = store.Snapshot();
        const int64_t rows = snap.size();
        ASSERT_TRUE(rows == kRowsA || rows == kRowsB) << rows;
        ASSERT_EQ(snap.dim(), kDim);
        ASSERT_EQ(snap.data().size(), static_cast<size_t>(rows * kDim));
        // Touch first and last row through the snapshot.
        float checksum = snap.row(0)[0] + snap.row(rows - 1)[kDim - 1];
        ASSERT_TRUE(checksum == checksum);  // not NaN
      }
    });
  }

  ReloadOptions fast;
  fast.max_attempts = 1;
  fast.backoff_ms = 0.0;
  for (int round = 0; round < 30; ++round) {
    ASSERT_TRUE(store.Reload(path_b, fast).ok());
    EXPECT_FALSE(store.Reload(path_bad, fast).ok());
    ASSERT_TRUE(store.Reload(path_a, fast).ok());
  }

  stop.store(true, std::memory_order_relaxed);
  for (auto& thread : readers) thread.join();
  EXPECT_GT(queries_served.load(), 0);

  std::error_code ec;
  std::filesystem::remove(path_a, ec);
  std::filesystem::remove(path_b, ec);
  std::filesystem::remove(path_bad, ec);
}

TEST(ReloadRaceTest, SnapshotTakenBeforeReloadStaysBitIdentical) {
  const std::string path = TempPath("pin");
  const auto next =
      EmbeddingStore::FromRows(kRowsB, kDim, RandomRows(kRowsB, kDim, 21));
  ASSERT_TRUE(next.Save(path).ok());

  auto store =
      EmbeddingStore::FromRows(kRowsA, kDim, RandomRows(kRowsA, kDim, 22));
  const EmbeddingSnapshot pinned = store.Snapshot();
  const std::vector<float> before = pinned.data();

  ASSERT_TRUE(store.Reload(path).ok());
  EXPECT_EQ(store.size(), kRowsB);
  // The pre-reload snapshot still sees the old table, byte for byte.
  EXPECT_EQ(pinned.size(), kRowsA);
  EXPECT_EQ(pinned.data(), before);

  std::error_code ec;
  std::filesystem::remove(path, ec);
}

}  // namespace
}  // namespace desalign::serve
