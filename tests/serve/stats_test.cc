#include "serve/stats.h"

#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace desalign::serve {
namespace {

TEST(ServeStatsTest, CountsAndPercentiles) {
  ServeStats stats;
  for (int i = 1; i <= 100; ++i) {
    stats.RecordQuery(static_cast<double>(i));
  }
  stats.RecordBatch(60);
  stats.RecordBatch(40);
  const auto snap = stats.Snapshot();
  EXPECT_EQ(snap.queries, 100);
  EXPECT_EQ(snap.batches, 2);
  EXPECT_DOUBLE_EQ(snap.mean_batch_size, 50.0);
  EXPECT_DOUBLE_EQ(snap.mean_latency_ms, 50.5);
  EXPECT_DOUBLE_EQ(snap.max_latency_ms, 100.0);
  // Percentiles interpolate within ~10%-wide histogram buckets, so allow
  // one bucket of slack (the pre-migration reservoir was exact here).
  EXPECT_NEAR(snap.p50_latency_ms, 50.0, 5.0);
  EXPECT_NEAR(snap.p95_latency_ms, 95.0, 9.5);
  EXPECT_NEAR(snap.p99_latency_ms, 99.0, 9.9);
  EXPECT_GT(snap.queries_per_second, 0.0);
}

TEST(ServeStatsTest, FixedBucketsBoundMemoryButTrackTail) {
  ServeStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.RecordQuery(i < 19000 ? 1.0 : 100.0);  // 5% slow tail
  }
  const auto snap = stats.Snapshot();
  EXPECT_EQ(snap.queries, 20000);
  EXPECT_DOUBLE_EQ(snap.max_latency_ms, 100.0);
  EXPECT_NEAR(snap.p50_latency_ms, 1.0, 0.1);
  // The tail starts exactly at the 95th percentile; both tail percentiles
  // must land in the slow mode, not between the modes.
  EXPECT_NEAR(snap.p99_latency_ms, 100.0, 10.0);
}

// --- Percentile edge cases locked in across the histogram migration ---

TEST(ServeStatsTest, EmptySnapshotIsAllZero) {
  ServeStats stats;
  const auto snap = stats.Snapshot();
  EXPECT_EQ(snap.queries, 0);
  EXPECT_DOUBLE_EQ(snap.mean_latency_ms, 0.0);
  EXPECT_DOUBLE_EQ(snap.p50_latency_ms, 0.0);
  EXPECT_DOUBLE_EQ(snap.p95_latency_ms, 0.0);
  EXPECT_DOUBLE_EQ(snap.p99_latency_ms, 0.0);
  EXPECT_DOUBLE_EQ(snap.max_latency_ms, 0.0);
}

TEST(ServeStatsTest, SingleSamplePercentilesAreExact) {
  ServeStats stats;
  stats.RecordQuery(3.25);
  const auto snap = stats.Snapshot();
  EXPECT_EQ(snap.queries, 1);
  EXPECT_DOUBLE_EQ(snap.mean_latency_ms, 3.25);
  EXPECT_DOUBLE_EQ(snap.p50_latency_ms, 3.25);
  EXPECT_DOUBLE_EQ(snap.p95_latency_ms, 3.25);
  EXPECT_DOUBLE_EQ(snap.p99_latency_ms, 3.25);
  EXPECT_DOUBLE_EQ(snap.max_latency_ms, 3.25);
}

TEST(ServeStatsTest, DuplicateSamplePercentilesAreExact) {
  ServeStats stats;
  for (int i = 0; i < 1000; ++i) stats.RecordQuery(7.5);
  const auto snap = stats.Snapshot();
  EXPECT_DOUBLE_EQ(snap.p50_latency_ms, 7.5);
  EXPECT_DOUBLE_EQ(snap.p95_latency_ms, 7.5);
  EXPECT_DOUBLE_EQ(snap.p99_latency_ms, 7.5);
  EXPECT_DOUBLE_EQ(snap.mean_latency_ms, 7.5);
}

TEST(ServeStatsTest, ReportsThroughSharedRegistry) {
  obs::MetricsRegistry registry;
  ServeStats stats(&registry, "serve_test");
  stats.RecordQuery(2.0);
  stats.RecordBatch(4);
  const auto collected = registry.Collect();
  ASSERT_TRUE(collected.histograms.count("serve_test.latency_ms"));
  ASSERT_TRUE(collected.histograms.count("serve_test.batch_size"));
  EXPECT_EQ(collected.histograms.at("serve_test.latency_ms").count, 1);
  EXPECT_DOUBLE_EQ(collected.histograms.at("serve_test.batch_size").sum, 4.0);
}

TEST(ServeStatsTest, ResetClearsEverything) {
  ServeStats stats;
  stats.RecordQuery(5.0);
  stats.RecordBatch(1);
  stats.Reset();
  const auto snap = stats.Snapshot();
  EXPECT_EQ(snap.queries, 0);
  EXPECT_EQ(snap.batches, 0);
  EXPECT_DOUBLE_EQ(snap.max_latency_ms, 0.0);
  EXPECT_DOUBLE_EQ(snap.p95_latency_ms, 0.0);
}

TEST(ServeStatsTest, ConcurrentRecordingIsConsistent) {
  ServeStats stats;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) stats.RecordQuery(1.0);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(stats.Snapshot().queries, kThreads * kPerThread);
}

TEST(ServeStatsTest, PrintTableShowsPercentileColumns) {
  ServeStats stats;
  stats.RecordQuery(2.0);
  stats.RecordBatch(1);
  std::ostringstream os;
  stats.PrintTable(os);
  EXPECT_NE(os.str().find("p50(ms)"), std::string::npos);
  EXPECT_NE(os.str().find("p95(ms)"), std::string::npos);
  EXPECT_NE(os.str().find("p99(ms)"), std::string::npos);
  EXPECT_NE(os.str().find("qps"), std::string::npos);
}

}  // namespace
}  // namespace desalign::serve
