#include "serve/stats.h"

#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace desalign::serve {
namespace {

TEST(ServeStatsTest, CountsAndPercentiles) {
  ServeStats stats;
  for (int i = 1; i <= 100; ++i) {
    stats.RecordQuery(static_cast<double>(i));
  }
  stats.RecordBatch(60);
  stats.RecordBatch(40);
  const auto snap = stats.Snapshot();
  EXPECT_EQ(snap.queries, 100);
  EXPECT_EQ(snap.batches, 2);
  EXPECT_DOUBLE_EQ(snap.mean_batch_size, 50.0);
  EXPECT_DOUBLE_EQ(snap.mean_latency_ms, 50.5);
  EXPECT_DOUBLE_EQ(snap.max_latency_ms, 100.0);
  // 1..100 fits in the reservoir, so percentiles are exact (nearest rank).
  EXPECT_NEAR(snap.p50_latency_ms, 50.0, 1.0);
  EXPECT_NEAR(snap.p95_latency_ms, 95.0, 1.0);
  EXPECT_GT(snap.queries_per_second, 0.0);
}

TEST(ServeStatsTest, ReservoirBoundsMemoryButTracksTail) {
  ServeStats stats(/*reservoir_capacity=*/256);
  for (int i = 0; i < 20000; ++i) {
    stats.RecordQuery(i < 19000 ? 1.0 : 100.0);  // 5% slow tail
  }
  const auto snap = stats.Snapshot();
  EXPECT_EQ(snap.queries, 20000);
  EXPECT_DOUBLE_EQ(snap.max_latency_ms, 100.0);
  EXPECT_NEAR(snap.p50_latency_ms, 1.0, 1e-9);
}

TEST(ServeStatsTest, ResetClearsEverything) {
  ServeStats stats;
  stats.RecordQuery(5.0);
  stats.RecordBatch(1);
  stats.Reset();
  const auto snap = stats.Snapshot();
  EXPECT_EQ(snap.queries, 0);
  EXPECT_EQ(snap.batches, 0);
  EXPECT_DOUBLE_EQ(snap.max_latency_ms, 0.0);
  EXPECT_DOUBLE_EQ(snap.p95_latency_ms, 0.0);
}

TEST(ServeStatsTest, ConcurrentRecordingIsConsistent) {
  ServeStats stats;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) stats.RecordQuery(1.0);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(stats.Snapshot().queries, kThreads * kPerThread);
}

TEST(ServeStatsTest, PrintTableShowsPercentileColumns) {
  ServeStats stats;
  stats.RecordQuery(2.0);
  stats.RecordBatch(1);
  std::ostringstream os;
  stats.PrintTable(os);
  EXPECT_NE(os.str().find("p50(ms)"), std::string::npos);
  EXPECT_NE(os.str().find("p95(ms)"), std::string::npos);
  EXPECT_NE(os.str().find("qps"), std::string::npos);
}

}  // namespace
}  // namespace desalign::serve
