#include "serve/topk.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "serve/embedding_store.h"

namespace desalign::serve {
namespace {

std::vector<float> RandomRows(int64_t rows, int64_t dim, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<float> data(static_cast<size_t>(rows * dim));
  for (auto& v : data) v = rng.UniformF(-1.0f, 1.0f);
  return data;
}

void ExpectSameResults(const std::vector<TopKResult>& actual,
                       const std::vector<TopKResult>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].ids, expected[i].ids) << "query " << i;
    EXPECT_EQ(actual[i].scores, expected[i].scores) << "query " << i;
  }
}

TEST(TopKRetrieverTest, MatchesBruteForceAcrossShapes) {
  // Sweep k, batch size, block size and thread count; the blocked pooled
  // path must be bit-identical to the brute-force reference everywhere.
  const int64_t dim = 13;
  const auto store_data = RandomRows(97, dim, 3);
  const auto store = EmbeddingStore::FromRows(97, dim, store_data);
  for (int threads : {1, 2, 5}) {
    common::ThreadPool pool(threads);
    for (int64_t block : {1, 16, 97, 1000}) {
      TopKOptions options;
      options.block_rows = block;
      options.pool = &pool;
      TopKRetriever retriever(&store, options);
      for (int64_t batch : {1, 7, 33}) {
        const auto queries = RandomRows(batch, dim, 100 + batch);
        for (int64_t k : {1, 5, 97, 200}) {
          const auto expected =
              retriever.RetrieveBruteForce(queries.data(), batch, k);
          const auto actual = retriever.Retrieve(queries.data(), batch, k);
          ExpectSameResults(actual, expected);
        }
      }
    }
  }
}

TEST(TopKRetrieverTest, SelfQueryRanksItselfFirst) {
  const int64_t dim = 8;
  const auto data = RandomRows(50, dim, 11);
  const auto store = EmbeddingStore::FromRows(50, dim, data);
  TopKRetriever retriever(&store);
  // Stored rows are normalized; querying with raw row r must return r at
  // rank 1 with cosine ~1.
  const auto results = retriever.Retrieve(data.data(), 50, 3);
  for (int64_t r = 0; r < 50; ++r) {
    ASSERT_EQ(results[r].ids.size(), 3u);
    EXPECT_EQ(results[r].ids[0], r);
    EXPECT_NEAR(results[r].scores[0], 1.0f, 1e-5f);
  }
}

TEST(TopKRetrieverTest, TiesBreakTowardSmallerId) {
  // Duplicate rows produce exactly equal scores; ordering must be by id.
  std::vector<float> data = {1, 0, 1, 0, 0, 1, 1, 0};
  const auto store = EmbeddingStore::FromRows(4, 2, data);
  TopKRetriever retriever(&store);
  const std::vector<float> query = {1, 0};
  const auto results = retriever.Retrieve(query.data(), 1, 3);
  EXPECT_EQ(results[0].ids, (std::vector<int64_t>{0, 1, 3}));
  const auto brute = retriever.RetrieveBruteForce(query.data(), 1, 3);
  EXPECT_EQ(results[0].ids, brute[0].ids);
}

TEST(TopKRetrieverTest, KClampedToStoreSize) {
  const auto store = EmbeddingStore::FromRows(3, 2, {1, 0, 0, 1, 1, 1});
  TopKRetriever retriever(&store);
  const std::vector<float> query = {1, 0};
  const auto results = retriever.Retrieve(query.data(), 1, 99);
  EXPECT_EQ(results[0].ids.size(), 3u);
  const auto none = retriever.Retrieve(query.data(), 1, 0);
  EXPECT_TRUE(none[0].ids.empty());
}

TEST(TopKRetrieverTest, NegativeKYieldsEmptyPerQueryResults) {
  // k < 0 is part of the documented contract: same as k == 0, per-query
  // entries exist (callers index results by query) but hold nothing.
  const auto store = EmbeddingStore::FromRows(3, 2, {1, 0, 0, 1, 1, 1});
  TopKRetriever retriever(&store);
  const std::vector<float> queries = {1, 0, 0, 1};
  for (const int64_t k : {int64_t{-1}, int64_t{-1000}}) {
    const auto results = retriever.Retrieve(queries.data(), 2, k);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].ids.empty());
    EXPECT_TRUE(results[0].scores.empty());
    EXPECT_TRUE(results[1].ids.empty());
    const auto brute = retriever.RetrieveBruteForce(queries.data(), 2, k);
    ExpectSameResults(results, brute);
  }
}

TEST(TopKRetrieverTest, EmptyStoreServesEmptyResults) {
  const EmbeddingStore store;
  TopKRetriever retriever(&store);
  EXPECT_EQ(retriever.size(), 0);
  const std::vector<float> query = {1, 0};
  const auto results = retriever.Retrieve(query.data(), 1, 5);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ids.empty());
}

TEST(TopKRetrieverTest, DuplicateScoreAtKBoundaryKeepsSmallerIds) {
  // Five identical rows, k = 3: the heap must evict by id so exactly
  // {0, 1, 2} survive — the boundary case where a wrong tie-break silently
  // returns a different-but-equal-scoring set.
  std::vector<float> data;
  for (int i = 0; i < 5; ++i) {
    data.push_back(1);
    data.push_back(0);
  }
  const auto store = EmbeddingStore::FromRows(5, 2, std::move(data));
  TopKRetriever retriever(&store);
  const std::vector<float> query = {1, 0};
  const auto results = retriever.Retrieve(query.data(), 1, 3);
  EXPECT_EQ(results[0].ids, (std::vector<int64_t>{0, 1, 2}));
  const auto brute = retriever.RetrieveBruteForce(query.data(), 1, 3);
  ExpectSameResults(results, brute);
}

TEST(TopKRetrieverTest, UsableThroughRetrieverInterface) {
  const int64_t dim = 4;
  const auto data = RandomRows(10, dim, 29);
  const auto store = EmbeddingStore::FromRows(10, dim, data);
  TopKRetriever concrete(&store);
  const Retriever& retriever = concrete;
  EXPECT_EQ(retriever.dim(), dim);
  EXPECT_EQ(retriever.size(), 10);
  const auto queries = RandomRows(3, dim, 31);
  ExpectSameResults(retriever.Retrieve(queries.data(), 3, 4),
                    concrete.RetrieveBruteForce(queries.data(), 3, 4));
}

TEST(TopKRetrieverTest, EmptyQueryBatch) {
  const auto store = EmbeddingStore::FromRows(3, 2, {1, 0, 0, 1, 1, 1});
  TopKRetriever retriever(&store);
  EXPECT_TRUE(retriever.Retrieve(nullptr, 0, 5).empty());
}

TEST(TopKRetrieverTest, TensorOverloadMatchesRawPointer) {
  const int64_t dim = 6;
  const auto data = RandomRows(20, dim, 17);
  const auto store = EmbeddingStore::FromRows(20, dim, data);
  TopKRetriever retriever(&store);
  const auto queries = RandomRows(4, dim, 23);
  auto t = tensor::Tensor::FromData(4, dim, queries);
  ExpectSameResults(retriever.Retrieve(*t, 5),
                    retriever.Retrieve(queries.data(), 4, 5));
}

}  // namespace
}  // namespace desalign::serve
