// TSan stress for dtype-swapping hot reload: query threads retrieving
// through TopKRetriever race a main thread that reloads the store across
// an fp32 checkpoint, its int8 quantization and its bf16 quantization (all
// of the same dim). The snapshot-swap design must give every query exactly
// one coherent (dtype, payload) pair — an int8 scan must never read fp32
// bytes or a stale scale array — and a corrupt reload in the middle of the
// rotation must leave readers undisturbed.

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "nn/quant.h"
#include "serve/embedding_store.h"
#include "serve/topk.h"

namespace desalign::serve {
namespace {

constexpr int64_t kDim = 16;
constexpr int64_t kRows = 512;
constexpr int64_t kTopK = 8;

std::vector<float> RandomRows(int64_t rows, int64_t dim, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<float> data(static_cast<size_t>(rows * dim));
  for (auto& v : data) v = rng.UniformF(-1.0f, 1.0f);
  return data;
}

std::string TempPath(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("desalign_quant_reload_" + tag + "_" + std::to_string(::getpid()) +
           ".dckpt"))
      .string();
}

TEST(QuantReloadRaceTest, DtypeSwapsUnderConcurrentReadersStayCoherent) {
  const std::string path_fp32 = TempPath("fp32");
  const std::string path_int8 = TempPath("int8");
  const std::string path_bf16 = TempPath("bf16");
  const std::string path_bad = TempPath("bad");

  const auto fp32_store =
      EmbeddingStore::FromRows(kRows, kDim, RandomRows(kRows, kDim, 41));
  ASSERT_TRUE(fp32_store.Save(path_fp32).ok());
  ASSERT_TRUE(fp32_store.Quantize(nn::TensorDtype::kInt8)
                  .value()
                  .Save(path_int8)
                  .ok());
  ASSERT_TRUE(fp32_store.Quantize(nn::TensorDtype::kBf16)
                  .value()
                  .Save(path_bf16)
                  .ok());
  std::ofstream(path_bad, std::ios::binary) << "not a checkpoint";

  EmbeddingStore store(fp32_store);

  std::atomic<bool> stop{false};
  std::atomic<int64_t> queries_served{0};
  std::vector<std::thread> readers;

  // Retriever readers: the dtype may change between queries, but every
  // single result must be a well-formed top-k over *some* full table.
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&store, &stop, &queries_served, t] {
      common::ThreadPool pool(1);
      TopKOptions options;
      options.pool = &pool;
      const TopKRetriever retriever(&store, options);
      common::Rng rng(200 + static_cast<uint64_t>(t));
      std::vector<float> query(static_cast<size_t>(kDim));
      while (!stop.load(std::memory_order_relaxed)) {
        for (auto& v : query) v = rng.UniformF(-1.0f, 1.0f);
        const auto results = retriever.Retrieve(query.data(), 1, kTopK);
        ASSERT_EQ(results.size(), 1u);
        const auto& r = results[0];
        ASSERT_EQ(r.ids.size(), static_cast<size_t>(kTopK));
        for (size_t i = 0; i < r.ids.size(); ++i) {
          ASSERT_GE(r.ids[i], 0);
          ASSERT_LT(r.ids[i], kRows);
          if (i > 0) {
            ASSERT_LE(r.scores[i], r.scores[i - 1]);
          }
        }
        queries_served.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Raw snapshot readers: a pinned snapshot's dtype and payloads must stay
  // mutually consistent for the snapshot's whole lifetime, across swaps.
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&store, &stop] {
      std::vector<float> scratch(static_cast<size_t>(kDim));
      while (!stop.load(std::memory_order_relaxed)) {
        const EmbeddingSnapshot snap = store.Snapshot();
        ASSERT_EQ(snap.size(), kRows);
        ASSERT_EQ(snap.dim(), kDim);
        // RowAsFloat must be servable for every dtype; NaN would mean a
        // torn (dtype, payload) pair.
        const float* first = snap.RowAsFloat(0, scratch.data());
        const float* last = snap.RowAsFloat(kRows - 1, scratch.data());
        ASSERT_TRUE(first[0] == first[0]);
        ASSERT_TRUE(last[kDim - 1] == last[kDim - 1]);
        if (snap.dtype() == nn::TensorDtype::kInt8) {
          // A coherent int8 table always has its scale array populated.
          ASSERT_GE(snap.scale(kRows - 1), 0.0f);
        }
      }
    });
  }

  ReloadOptions fast;
  fast.max_attempts = 1;
  fast.backoff_ms = 0.0;
  for (int round = 0; round < 30; ++round) {
    ASSERT_TRUE(store.Reload(path_int8, fast).ok());
    ASSERT_TRUE(store.Reload(path_bf16, fast).ok());
    EXPECT_FALSE(store.Reload(path_bad, fast).ok());
    ASSERT_TRUE(store.Reload(path_fp32, fast).ok());
  }

  stop.store(true, std::memory_order_relaxed);
  for (auto& thread : readers) thread.join();
  EXPECT_GT(queries_served.load(), 0);

  std::error_code ec;
  std::filesystem::remove(path_fp32, ec);
  std::filesystem::remove(path_int8, ec);
  std::filesystem::remove(path_bf16, ec);
  std::filesystem::remove(path_bad, ec);
}

TEST(QuantReloadRaceTest, PinnedSnapshotOutlivesDtypeSwap) {
  const std::string path = TempPath("pin");
  auto store =
      EmbeddingStore::FromRows(kRows, kDim, RandomRows(kRows, kDim, 42));
  ASSERT_TRUE(
      store.Quantize(nn::TensorDtype::kInt8).value().Save(path).ok());

  const EmbeddingSnapshot pinned = store.Snapshot();
  ASSERT_EQ(pinned.dtype(), nn::TensorDtype::kFloat32);
  const std::vector<float> before = pinned.data();

  ASSERT_TRUE(store.Reload(path).ok());
  EXPECT_EQ(store.Snapshot().dtype(), nn::TensorDtype::kInt8);
  // The pre-reload snapshot still sees the fp32 table, byte for byte.
  EXPECT_EQ(pinned.dtype(), nn::TensorDtype::kFloat32);
  EXPECT_EQ(pinned.data(), before);

  std::error_code ec;
  std::filesystem::remove(path, ec);
}

}  // namespace
}  // namespace desalign::serve
