#include "serve/embedding_store.h"

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "nn/serialize.h"
#include "serve/stats.h"
#include "tensor/tensor.h"

namespace desalign::serve {
namespace {

using tensor::Tensor;

class EmbeddingStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    common::FaultInjector::Global().Clear();
    path_ = (std::filesystem::temp_directory_path() /
             ("desalign_store_" + std::to_string(::getpid()) + ".ckpt"))
                .string();
  }
  void TearDown() override {
    common::FaultInjector::Global().Clear();
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  std::string path_;
};

TEST_F(EmbeddingStoreTest, RowsAreUnitNorm) {
  common::Rng rng(1);
  auto t = Tensor::Create(17, 9);
  for (auto& v : t->data()) v = rng.UniformF(-2.0f, 2.0f);
  const auto store = EmbeddingStore::FromTensor(*t);
  ASSERT_EQ(store.size(), 17);
  ASSERT_EQ(store.dim(), 9);
  for (int64_t r = 0; r < store.size(); ++r) {
    float sum = 0.0f;
    for (int64_t c = 0; c < store.dim(); ++c) {
      sum += store.row(r)[c] * store.row(r)[c];
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST_F(EmbeddingStoreTest, ZeroRowsStayZero) {
  const auto store = EmbeddingStore::FromRows(2, 3, {0, 0, 0, 3, 0, 4});
  EXPECT_EQ(store.row(0)[0], 0.0f);
  EXPECT_EQ(store.row(0)[2], 0.0f);
  EXPECT_NEAR(store.row(1)[0], 0.6f, 1e-6f);
  EXPECT_NEAR(store.row(1)[2], 0.8f, 1e-6f);
}

TEST_F(EmbeddingStoreTest, SaveLoadRoundTripIsExact) {
  common::Rng rng(2);
  auto t = Tensor::Create(23, 8);
  for (auto& v : t->data()) v = rng.UniformF(-1.0f, 1.0f);
  const auto store = EmbeddingStore::FromTensor(*t);
  ASSERT_TRUE(store.Save(path_).ok());
  auto loaded = EmbeddingStore::Load(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().size(), store.size());
  EXPECT_EQ(loaded.value().dim(), store.dim());
  EXPECT_EQ(loaded.value().data(), store.data());
}

TEST_F(EmbeddingStoreTest, LoadSelectsTensorByIndex) {
  auto a = Tensor::FromData(1, 2, {1.0f, 0.0f});
  auto b = Tensor::FromData(2, 2, {0.0f, 1.0f, 1.0f, 0.0f});
  ASSERT_TRUE(nn::SaveParameters({a, b}, path_).ok());
  auto second = EmbeddingStore::Load(path_, 1);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().size(), 2);
  auto out_of_range = EmbeddingStore::Load(path_, 2);
  ASSERT_FALSE(out_of_range.ok());
  EXPECT_EQ(out_of_range.status().code(),
            common::StatusCode::kInvalidArgument);
}

TEST_F(EmbeddingStoreTest, LoadMissingFileFailsCleanly) {
  auto loaded = EmbeddingStore::Load(path_ + ".nope");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), common::StatusCode::kIoError);
}

TEST_F(EmbeddingStoreTest, LoadGarbageFailsCleanly) {
  std::ofstream(path_) << "not a checkpoint at all";
  auto loaded = EmbeddingStore::Load(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), common::StatusCode::kIoError);
}

TEST_F(EmbeddingStoreTest, ReloadSwapsInNewSnapshot) {
  auto store = EmbeddingStore::FromRows(2, 3, {1, 0, 0, 0, 1, 0});
  const auto next = EmbeddingStore::FromRows(4, 3, {0, 0, 1, 0, 1, 0,  //
                                                    1, 0, 0, 0, 1, 1});
  ASSERT_TRUE(next.Save(path_).ok());
  ServeStats stats;
  ASSERT_TRUE(store.Reload(path_, ReloadOptions{}, &stats).ok());
  EXPECT_EQ(store.size(), 4);
  EXPECT_EQ(store.data(), next.data());
  EXPECT_EQ(stats.Snapshot().reloads_ok, 1);
  EXPECT_EQ(stats.Snapshot().reloads_failed, 0);
}

TEST_F(EmbeddingStoreTest, ReloadOfCorruptFileKeepsServingLastGood) {
  auto store = EmbeddingStore::FromRows(2, 3, {1, 0, 0, 0, 1, 0});
  const auto before = store.data();
  std::ofstream(path_, std::ios::binary) << "corrupted snapshot bytes";
  ServeStats stats;
  ReloadOptions options;
  options.max_attempts = 2;
  options.backoff_ms = 0.0;
  const auto status = store.Reload(path_, options, &stats);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(store.size(), 2);        // old snapshot still intact
  EXPECT_EQ(store.data(), before);   // bit-for-bit
  EXPECT_EQ(stats.Snapshot().reloads_failed, 1);
}

TEST_F(EmbeddingStoreTest, ReloadRetriesThroughTransientReadFault) {
  auto store = EmbeddingStore::FromRows(2, 3, {1, 0, 0, 0, 1, 0});
  const auto next = EmbeddingStore::FromRows(3, 3, {0, 0, 1, 0, 1, 0,  //
                                                    1, 0, 0});
  ASSERT_TRUE(next.Save(path_).ok());
  // First read attempt fails in flight; the bounded retry must succeed.
  ASSERT_TRUE(
      common::FaultInjector::Global().Configure("ckpt.read:fail@1").ok());
  ReloadOptions options;
  options.max_attempts = 3;
  options.backoff_ms = 0.1;
  ServeStats stats;
  const auto status = store.Reload(path_, options, &stats);
  common::FaultInjector::Global().Clear();
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(store.size(), 3);
  EXPECT_EQ(stats.Snapshot().reloads_ok, 1);
}

TEST_F(EmbeddingStoreTest, ReloadRejectsDimensionChangeImmediately) {
  auto store = EmbeddingStore::FromRows(2, 3, {1, 0, 0, 0, 1, 0});
  const auto wrong_dim = EmbeddingStore::FromRows(2, 5, {1, 0, 0, 0, 0,  //
                                                         0, 1, 0, 0, 0});
  ASSERT_TRUE(wrong_dim.Save(path_).ok());
  ServeStats stats;
  const auto status = store.Reload(path_, ReloadOptions{}, &stats);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), common::StatusCode::kInvalidArgument);
  EXPECT_EQ(store.dim(), 3);  // unchanged
  EXPECT_EQ(stats.Snapshot().reloads_failed, 1);
}

}  // namespace
}  // namespace desalign::serve
