#include "serve/batch_queue.h"

#include <chrono>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/rng.h"
#include "serve/embedding_store.h"
#include "serve/stats.h"
#include "serve/topk.h"

namespace desalign::serve {
namespace {

std::vector<float> RandomRows(int64_t rows, int64_t dim, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<float> data(static_cast<size_t>(rows * dim));
  for (auto& v : data) v = rng.UniformF(-1.0f, 1.0f);
  return data;
}

TEST(BatchQueueTest, SingleQueryMatchesDirectRetrieval) {
  const int64_t dim = 8;
  const auto data = RandomRows(40, dim, 5);
  const auto store = EmbeddingStore::FromRows(40, dim, data);
  TopKRetriever retriever(&store);
  BatchQueueOptions options;
  options.k = 4;
  BatchQueue queue(&retriever, options);

  const auto query = RandomRows(1, dim, 9);
  auto result = queue.Submit(query).get();
  const auto direct = retriever.Retrieve(query.data(), 1, 4);
  EXPECT_EQ(result.ids, direct[0].ids);
  EXPECT_EQ(result.scores, direct[0].scores);
}

TEST(BatchQueueTest, ConcurrentSubmittersGetTheirOwnResults) {
  const int64_t dim = 10;
  const int64_t num_entities = 64;
  const auto data = RandomRows(num_entities, dim, 21);
  const auto store = EmbeddingStore::FromRows(num_entities, dim, data);
  TopKRetriever retriever(&store);
  BatchQueueOptions options;
  options.k = 1;
  options.max_batch = 8;
  options.max_wait_ms = 0.5;
  ServeStats stats;
  BatchQueue queue(&retriever, options, &stats);

  // Each submitter replays stored (already normalized) rows; the rank-1
  // result must be the row's own id, proving results are never swapped
  // between interleaved requests from different threads.
  constexpr int kThreads = 6;
  constexpr int kPerThread = 50;
  std::vector<std::thread> submitters;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      common::Rng rng(100 + static_cast<uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        const int64_t id = rng.UniformInt(num_entities);
        const float* row = store.row(id);
        auto result =
            queue.Submit(std::vector<float>(row, row + dim)).get();
        if (result.ids.size() != 1 || result.ids[0] != id) ++failures[t];
      }
    });
  }
  for (auto& s : submitters) s.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0);

  const auto snap = stats.Snapshot();
  EXPECT_EQ(snap.queries, kThreads * kPerThread);
  EXPECT_GT(snap.batches, 0);
  EXPECT_GT(snap.p95_latency_ms, 0.0);
}

TEST(BatchQueueTest, BacklogIsCoBatched) {
  const int64_t dim = 4;
  const auto data = RandomRows(32, dim, 2);
  const auto store = EmbeddingStore::FromRows(32, dim, data);
  TopKRetriever retriever(&store);
  common::ManualClock clock;
  BatchQueueOptions options;
  options.k = 2;
  options.max_batch = 16;
  options.max_wait_ms = 20.0;
  options.clock = &clock;  // frozen: the window never expires, so the
                           // worker may only ever drain FULL batches
  BatchQueue queue(&retriever, options);

  std::vector<std::future<TopKResult>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(queue.Submit(RandomRows(1, dim, 50 + i)));
  }
  for (auto& f : futures) EXPECT_EQ(f.get().ids.size(), 2u);
  // Exactly 64 / 16 drains — deterministic, not a timing-dependent range.
  queue.Shutdown();
  EXPECT_EQ(queue.batches_processed(), 4);
}

// The max_wait_ms contract on a ManualClock, with no real sleeps: a
// partial batch is held while the co-batch window is open and dispatched
// the moment the clock reaches (oldest enqueued + max_wait_ms).
TEST(BatchQueueTest, PartialBatchDispatchesWhenWindowExpires) {
  const int64_t dim = 4;
  const auto data = RandomRows(32, dim, 12);
  const auto store = EmbeddingStore::FromRows(32, dim, data);
  TopKRetriever retriever(&store);
  common::ManualClock clock;
  BatchQueueOptions options;
  options.k = 2;
  options.max_batch = 16;
  options.max_wait_ms = 20.0;
  options.clock = &clock;
  BatchQueue queue(&retriever, options);

  std::vector<std::future<TopKResult>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(queue.Submit(RandomRows(1, dim, 60 + i)));
  }
  // Window open (clock frozen, 3 < max_batch): the worker must hold the
  // partial batch, however long we wait in wall time.
  while (clock.wait_calls() == 0) std::this_thread::yield();
  for (auto& f : futures) {
    EXPECT_EQ(f.wait_for(std::chrono::milliseconds(0)),
              std::future_status::timeout);
  }
  // One tick short of the window still holds...
  clock.AdvanceBy(common::Clock::FromMillis(19.0));
  EXPECT_EQ(futures[0].wait_for(std::chrono::milliseconds(0)),
            std::future_status::timeout);
  // ...reaching it releases the partial batch of 3 as one drain.
  clock.AdvanceBy(common::Clock::FromMillis(1.0));
  for (auto& f : futures) EXPECT_EQ(f.get().ids.size(), 2u);
  queue.Shutdown();
  EXPECT_EQ(queue.batches_processed(), 1);
}

TEST(BatchQueueTest, ShutdownDrainsPendingAndRejectsNewWork) {
  const int64_t dim = 4;
  const auto data = RandomRows(16, dim, 3);
  const auto store = EmbeddingStore::FromRows(16, dim, data);
  TopKRetriever retriever(&store);
  BatchQueueOptions options;
  options.k = 3;
  options.max_wait_ms = 50.0;
  BatchQueue queue(&retriever, options);

  std::vector<std::future<TopKResult>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(queue.Submit(RandomRows(1, dim, 70 + i)));
  }
  queue.Shutdown();
  for (auto& f : futures) {
    const auto result = f.get();
    EXPECT_EQ(result.status, ServeStatus::kOk);
    EXPECT_EQ(result.ids.size(), 3u);
  }
  // After shutdown, submissions resolve immediately with a typed status —
  // not an empty result a caller could mistake for a legitimate top-k.
  const auto late = queue.Submit(RandomRows(1, dim, 99)).get();
  EXPECT_EQ(late.status, ServeStatus::kShutdown);
  EXPECT_TRUE(late.ids.empty());
}

TEST(BatchQueueTest, SubmittersRacingShutdownAlwaysGetAFulfilledFuture) {
  // Stress the Submit/Shutdown race under TSan: submitters hammer the
  // queue while another thread tears it down. Every future must become
  // ready — either with k results (accepted before shutdown) or empty
  // (rejected after) — and no future may throw broken_promise or hang.
  const int64_t dim = 4;
  const auto data = RandomRows(16, dim, 6);
  const auto store = EmbeddingStore::FromRows(16, dim, data);
  TopKRetriever retriever(&store);
  for (int round = 0; round < 8; ++round) {
    BatchQueueOptions options;
    options.k = 2;
    options.max_batch = 4;
    options.max_wait_ms = 0.1;
    BatchQueue queue(&retriever, options);

    constexpr int kThreads = 4;
    constexpr int kPerThread = 25;
    std::vector<std::thread> submitters;
    std::vector<std::vector<std::future<TopKResult>>> futures(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      submitters.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          futures[t].push_back(
              queue.Submit(RandomRows(1, dim, 200 + t * kPerThread + i)));
        }
      });
    }
    // Shut down while submissions are still in flight.
    std::thread closer([&] { queue.Shutdown(); });
    for (auto& s : submitters) s.join();
    closer.join();

    for (auto& per_thread : futures) {
      for (auto& f : per_thread) {
        ASSERT_TRUE(f.valid());
        TopKResult result;
        ASSERT_NO_THROW(result = f.get());
        EXPECT_TRUE(
            (result.status == ServeStatus::kOk && result.ids.size() == 2u) ||
            (result.status == ServeStatus::kShutdown && result.ids.empty()));
      }
    }
  }
}

TEST(BatchQueueTest, DestructionRacingSubmittersLeavesNoBrokenPromise) {
  const int64_t dim = 4;
  const auto data = RandomRows(16, dim, 7);
  const auto store = EmbeddingStore::FromRows(16, dim, data);
  TopKRetriever retriever(&store);
  for (int round = 0; round < 8; ++round) {
    std::vector<std::future<TopKResult>> futures;
    std::mutex futures_mu;
    std::vector<std::thread> submitters;
    {
      BatchQueueOptions options;
      options.k = 1;
      options.max_wait_ms = 0.1;
      BatchQueue queue(&retriever, options);
      for (int t = 0; t < 3; ++t) {
        submitters.emplace_back([&, t] {
          for (int i = 0; i < 20; ++i) {
            auto f = queue.Submit(RandomRows(1, dim, 300 + t * 20 + i));
            std::lock_guard<std::mutex> lock(futures_mu);
            futures.push_back(std::move(f));
          }
        });
      }
      for (auto& s : submitters) s.join();
      // ~BatchQueue runs here with every future already issued.
    }
    for (auto& f : futures) {
      ASSERT_TRUE(f.valid());
      ASSERT_NO_THROW(f.get());
    }
  }
}

TEST(BatchQueueTest, DestructorCompletesOutstandingFutures) {
  const int64_t dim = 4;
  const auto data = RandomRows(16, dim, 4);
  const auto store = EmbeddingStore::FromRows(16, dim, data);
  TopKRetriever retriever(&store);
  std::future<TopKResult> future;
  {
    BatchQueueOptions options;
    options.k = 1;
    options.max_wait_ms = 100.0;
    BatchQueue queue(&retriever, options);
    future = queue.Submit(RandomRows(1, dim, 8));
  }
  EXPECT_EQ(future.get().ids.size(), 1u);
}

}  // namespace
}  // namespace desalign::serve
