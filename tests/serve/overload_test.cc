#include <algorithm>
#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/fault_injection.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "serve/batch_queue.h"
#include "serve/embedding_store.h"
#include "serve/health.h"
#include "serve/stats.h"
#include "serve/topk.h"

namespace desalign::serve {
namespace {

using common::Clock;
using common::ManualClock;

std::vector<float> RandomRows(int64_t rows, int64_t dim, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<float> data(static_cast<size_t>(rows * dim));
  for (auto& v : data) v = rng.UniformF(-1.0f, 1.0f);
  return data;
}

/// Delegates to a real retriever while recording the degradation level of
/// every call — how the ladder tests observe which rung served a batch.
class LevelRecordingRetriever final : public Retriever {
 public:
  explicit LevelRecordingRetriever(const Retriever* inner) : inner_(inner) {}

  std::vector<TopKResult> Retrieve(const float* queries, int64_t num_queries,
                                   int64_t k) const override {
    Record(DegradationLevel::kNone);
    return inner_->Retrieve(queries, num_queries, k);
  }

  std::vector<TopKResult> RetrieveDegraded(
      const float* queries, int64_t num_queries, int64_t k,
      DegradationLevel level) const override {
    Record(level);
    return inner_->RetrieveDegraded(queries, num_queries, k, level);
  }

  int64_t dim() const override { return inner_->dim(); }
  int64_t size() const override { return inner_->size(); }

  std::vector<DegradationLevel> levels() const {
    common::MutexLock lock(mutex_);
    return levels_;
  }

 private:
  void Record(DegradationLevel level) const {
    common::MutexLock lock(mutex_);
    levels_.push_back(level);
  }

  const Retriever* inner_;
  mutable common::Mutex mutex_;
  mutable std::vector<DegradationLevel> levels_ GUARDED_BY(mutex_);
};

class OverloadTest : public ::testing::Test {
 protected:
  void TearDown() override { common::FaultInjector::Global().Clear(); }
};

TEST_F(OverloadTest, StatusAndLevelNamesAreStable) {
  EXPECT_STREQ(ServeStatusName(ServeStatus::kOk), "ok");
  EXPECT_STREQ(ServeStatusName(ServeStatus::kRejectedQueueFull),
               "rejected_queue_full");
  EXPECT_STREQ(ServeStatusName(ServeStatus::kDeadlineExceeded),
               "deadline_exceeded");
  EXPECT_STREQ(ServeStatusName(ServeStatus::kInvalidQuery), "invalid_query");
  EXPECT_STREQ(ServeStatusName(ServeStatus::kShutdown), "shutdown");
  EXPECT_STREQ(DegradationLevelName(DegradationLevel::kNone), "none");
  EXPECT_STREQ(DegradationLevelName(DegradationLevel::kReducedProbe),
               "reduced_probe");
  EXPECT_STREQ(DegradationLevelName(DegradationLevel::kNoRefine),
               "no_refine");
  EXPECT_STREQ(HealthStateName(HealthState::kHealthy), "healthy");
  EXPECT_STREQ(HealthStateName(HealthState::kDegraded), "degraded");
  EXPECT_STREQ(HealthStateName(HealthState::kShedding), "shedding");
}

// Regression: a wrong-dimension query used to DESALIGN_CHECK-abort the
// whole process. The serving front door must reject it with a typed
// status and keep serving.
TEST_F(OverloadTest, InvalidDimensionQueryIsRejectedNotAborted) {
  const int64_t dim = 8;
  const auto store = EmbeddingStore::FromRows(16, dim, RandomRows(16, dim, 1));
  TopKRetriever retriever(&store);
  obs::MetricsRegistry registry;
  ServeStats stats(&registry);
  BatchQueueOptions options;
  options.k = 2;
  BatchQueue queue(&retriever, options, &stats);

  auto bad = queue.Submit(RandomRows(1, dim - 3, 2)).get();
  EXPECT_EQ(bad.status, ServeStatus::kInvalidQuery);
  EXPECT_TRUE(bad.ids.empty());

  auto good = queue.Submit(RandomRows(1, dim, 3)).get();
  EXPECT_EQ(good.status, ServeStatus::kOk);
  EXPECT_EQ(good.ids.size(), 2u);
  EXPECT_EQ(stats.Snapshot().rejected_invalid, 1);
}

// Regression: Submit after Shutdown used to hand back an ambiguous empty
// result, indistinguishable from a legitimate empty top-k.
TEST_F(OverloadTest, ShutdownPathsCarryDefiniteStatuses) {
  const int64_t dim = 4;
  const auto store = EmbeddingStore::FromRows(16, dim, RandomRows(16, dim, 4));
  TopKRetriever retriever(&store);
  obs::MetricsRegistry registry;
  ServeStats stats(&registry);
  BatchQueueOptions options;
  options.k = 3;
  options.max_wait_ms = 50.0;
  BatchQueue queue(&retriever, options, &stats);

  // Pending work admitted before Shutdown is drained and served kOk...
  std::vector<std::future<TopKResult>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(queue.Submit(RandomRows(1, dim, 10 + i)));
  }
  queue.Shutdown();
  for (auto& f : futures) {
    const auto result = f.get();
    EXPECT_EQ(result.status, ServeStatus::kOk);
    EXPECT_EQ(result.ids.size(), 3u);
  }
  // ...while work submitted after resolves immediately as kShutdown.
  const auto late = queue.Submit(RandomRows(1, dim, 99)).get();
  EXPECT_EQ(late.status, ServeStatus::kShutdown);
  EXPECT_TRUE(late.ids.empty());
  EXPECT_EQ(stats.Snapshot().rejected_shutdown, 1);
}

// Deterministic bounded admission on a frozen ManualClock: the worker
// holds its partial batch (the co-batch window never times out), so the
// queue depth is exact and the (max_pending + 1)-th Submit must bounce.
TEST_F(OverloadTest, BoundedQueueRejectsAtMaxPending) {
  const int64_t dim = 4;
  const auto store = EmbeddingStore::FromRows(16, dim, RandomRows(16, dim, 5));
  TopKRetriever retriever(&store);
  ManualClock clock;
  obs::MetricsRegistry registry;
  ServeStats stats(&registry, "serve", &clock);
  BatchQueueOptions options;
  options.k = 1;
  options.max_batch = 8;
  options.max_wait_ms = 100.0;
  options.max_pending = 4;
  options.clock = &clock;
  BatchQueue queue(&retriever, options, &stats);

  std::vector<std::future<TopKResult>> admitted;
  for (int i = 0; i < 4; ++i) {
    admitted.push_back(queue.Submit(RandomRows(1, dim, 20 + i)));
  }
  auto rejected = queue.Submit(RandomRows(1, dim, 30)).get();
  EXPECT_EQ(rejected.status, ServeStatus::kRejectedQueueFull);

  clock.AdvanceBy(Clock::FromMillis(100.0));
  for (auto& f : admitted) {
    EXPECT_EQ(f.get().status, ServeStatus::kOk);
  }
  const auto snap = stats.Snapshot();
  EXPECT_EQ(snap.admitted, 4);
  EXPECT_EQ(snap.shed_queue_full, 1);
}

TEST_F(OverloadTest, ExpiredDeadlineIsShedAtAdmission) {
  const int64_t dim = 4;
  const auto store = EmbeddingStore::FromRows(16, dim, RandomRows(16, dim, 6));
  TopKRetriever retriever(&store);
  ManualClock clock;
  obs::MetricsRegistry registry;
  ServeStats stats(&registry, "serve", &clock);
  BatchQueueOptions options;
  options.k = 1;
  options.clock = &clock;
  BatchQueue queue(&retriever, options, &stats);

  const auto result =
      queue.SubmitWithDeadline(RandomRows(1, dim, 7), clock.Now()).get();
  EXPECT_EQ(result.status, ServeStatus::kDeadlineExceeded);
  EXPECT_EQ(stats.Snapshot().shed_deadline, 1);
}

// A request whose deadline expires while it waits in the queue is shed at
// batch formation (pre-scan) — it never occupies a scoring slot — while
// its batch-mates are served. The deadline also caps the co-batch hold:
// the batch forms at the deadline, not at max_wait.
TEST_F(OverloadTest, DeadlineExpiredInQueueIsShedPreScan) {
  const int64_t dim = 4;
  const auto store = EmbeddingStore::FromRows(16, dim, RandomRows(16, dim, 8));
  TopKRetriever retriever(&store);
  ManualClock clock;
  obs::MetricsRegistry registry;
  ServeStats stats(&registry, "serve", &clock);
  BatchQueueOptions options;
  options.k = 1;
  options.max_batch = 8;
  options.max_wait_ms = 50.0;
  options.clock = &clock;
  BatchQueue queue(&retriever, options, &stats);

  auto doomed = queue.Submit(RandomRows(1, dim, 40), /*timeout_ms=*/10.0);
  auto served = queue.Submit(RandomRows(1, dim, 41));
  clock.AdvanceBy(Clock::FromMillis(10.0));

  EXPECT_EQ(doomed.get().status, ServeStatus::kDeadlineExceeded);
  EXPECT_EQ(served.get().status, ServeStatus::kOk);
  EXPECT_EQ(stats.Snapshot().shed_deadline, 1);
}

// The full ladder walk, deterministic on a ManualClock: a backlog spike
// escalates the governor, batches are served at the degraded rung, and
// once pressure subsides the idle sampler steps back to healthy — after
// which results are bit-identical to direct retrieval.
TEST_F(OverloadTest, LadderDegradesUnderPressureAndRecoversBitExact) {
  const int64_t dim = 8;
  const auto store = EmbeddingStore::FromRows(32, dim, RandomRows(32, dim, 9));
  TopKRetriever inner(&store);
  LevelRecordingRetriever retriever(&inner);
  ManualClock clock;
  obs::MetricsRegistry registry;
  ServeStats stats(&registry, "serve", &clock);
  BatchQueueOptions options;
  options.k = 4;
  options.max_batch = 8;
  options.max_wait_ms = 5.0;
  options.max_pending = 8;
  options.clock = &clock;
  options.overload.enabled = true;
  options.overload.degrade_depth_fraction = 0.5;
  options.overload.shed_depth_fraction = 2.0;  // depth alone never sheds here
  options.overload.sample_window_ms = 10.0;
  options.overload.recover_hold_ms = 20.0;
  options.overload.recover_depth_fraction = 0.99;
  BatchQueue queue(&retriever, options, &stats);

  // The frozen clock holds the co-batch window open, so the backlog piles
  // up to exactly 6 pending / max_pending 8 = 0.75 >= 0.5: pressure at the
  // sample taken when the released window forms the batch.
  std::vector<std::future<TopKResult>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(queue.Submit(RandomRows(1, dim, 50 + i)));
  }
  clock.AdvanceBy(Clock::FromMillis(5.0));
  for (auto& f : futures) {
    const auto result = f.get();
    EXPECT_EQ(result.status, ServeStatus::kOk);
    EXPECT_EQ(result.degradation, DegradationLevel::kReducedProbe);
  }
  EXPECT_GE(queue.health_rung(), 1);
  EXPECT_EQ(queue.health_state(), HealthState::kDegraded);
  EXPECT_GT(stats.Snapshot().degraded, 0);

  // Pressure is gone; each 10 ms advance gives the idle sampler one
  // observation, and every 20 ms hold steps down one rung.
  for (int i = 0; i < 100 && queue.health_rung() > 0; ++i) {
    clock.AdvanceBy(Clock::FromMillis(10.0));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(queue.health_rung(), 0);
  EXPECT_EQ(queue.health_state(), HealthState::kHealthy);

  // Recovered: served results are bit-identical to direct retrieval. (The
  // probe needs its co-batch window released on the frozen clock.)
  const auto probe_query = RandomRows(1, dim, 77);
  auto probe_future = queue.Submit(probe_query);
  clock.AdvanceBy(Clock::FromMillis(5.0));
  const auto via_queue = probe_future.get();
  const auto direct = inner.Retrieve(probe_query.data(), 1, options.k);
  EXPECT_EQ(via_queue.status, ServeStatus::kOk);
  EXPECT_EQ(via_queue.degradation, DegradationLevel::kNone);
  EXPECT_EQ(via_queue.ids, direct[0].ids);
  EXPECT_EQ(via_queue.scores, direct[0].scores);

  // The recorded ladder: at least one degraded batch, and the last call
  // (the probe) back at full quality.
  const auto levels = retriever.levels();
  ASSERT_FALSE(levels.empty());
  EXPECT_NE(std::count(levels.begin(), levels.end(),
                       DegradationLevel::kReducedProbe),
            0);
  EXPECT_EQ(levels.back(), DegradationLevel::kNone);
  EXPECT_GT(stats.Snapshot().health_transitions, 0);
}

// Depth at the shed threshold jumps straight to rung 3. Shedding is a
// watermark, not a blackout: admissions resume below it, and the queue
// keeps draining (goodput survives the storm).
TEST_F(OverloadTest, SheddingIsAWatermarkNotABlackout) {
  const int64_t dim = 4;
  const auto store = EmbeddingStore::FromRows(16, dim, RandomRows(16, dim, 11));
  TopKRetriever inner(&store);
  LevelRecordingRetriever retriever(&inner);
  ManualClock clock;
  obs::MetricsRegistry registry;
  ServeStats stats(&registry, "serve", &clock);
  BatchQueueOptions options;
  options.k = 1;
  options.max_batch = 16;
  options.max_wait_ms = 5.0;
  options.max_pending = 8;
  options.clock = &clock;
  options.overload.enabled = true;
  options.overload.shed_depth_fraction = 0.875;  // watermark = depth 7
  options.overload.sample_window_ms = 10.0;
  options.overload.recover_hold_ms = 1000.0;  // stay shedding for the test
  BatchQueue queue(&retriever, options, &stats);

  // Fill to max_pending on the frozen clock, then release the window: the
  // drain samples depth 8/8 = 1.0 >= 0.875 and jumps to shedding.
  std::vector<std::future<TopKResult>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(queue.Submit(RandomRows(1, dim, 60 + i)));
  }
  clock.AdvanceBy(Clock::FromMillis(5.0));
  for (auto& f : futures) {
    EXPECT_EQ(f.get().status, ServeStatus::kOk);
  }
  EXPECT_EQ(queue.health_rung(), HealthGovernor::kSheddingRung);
  EXPECT_EQ(queue.health_state(), HealthState::kShedding);
  // The storm batch itself was served at the deepest quality rung.
  const auto levels = retriever.levels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.back(), DegradationLevel::kNoRefine);

  // Still shedding, queue now empty: admissions below the watermark (7)
  // are accepted, the one at it is rejected.
  std::vector<std::future<TopKResult>> refill;
  for (int i = 0; i < 7; ++i) {
    refill.push_back(queue.Submit(RandomRows(1, dim, 80 + i)));
  }
  const auto turned_away = queue.Submit(RandomRows(1, dim, 90)).get();
  EXPECT_EQ(turned_away.status, ServeStatus::kRejectedQueueFull);
  clock.AdvanceBy(Clock::FromMillis(5.0));
  for (auto& f : refill) {
    EXPECT_EQ(f.get().status, ServeStatus::kOk);
  }
  EXPECT_GE(stats.Snapshot().shed_queue_full, 1);
}

// Chaos: a slow retriever (DESALIGN_FAULTS delay on the queue's
// ManualClock) makes admitted requests complete late; the miss-rate
// signal must escalate the governor even though nothing was shed.
TEST_F(OverloadTest, SlowRetrieverFaultDrivesMissRateEscalation) {
  ASSERT_TRUE(common::FaultInjector::Global()
                  .Configure("serve.batch.retrieve:delay:30@*")
                  .ok());
  const int64_t dim = 4;
  const auto store = EmbeddingStore::FromRows(16, dim, RandomRows(16, dim, 12));
  TopKRetriever retriever(&store);
  ManualClock clock;
  BatchQueueOptions options;
  options.k = 1;
  options.max_batch = 2;
  options.max_wait_ms = 5.0;
  options.max_pending = 64;
  options.deadline_ms = 20.0;  // every 30 ms-delayed batch misses it
  options.clock = &clock;
  options.overload.enabled = true;
  options.overload.degrade_depth_fraction = 2.0;  // depth never escalates
  options.overload.shed_depth_fraction = 3.0;
  options.overload.deadline_miss_fraction = 0.5;
  options.overload.sample_window_ms = 10.0;
  BatchQueue queue(&retriever, options);

  // First full batch: completes 30 ms late (the fault advances the
  // clock), both outcomes are misses. Second batch's formation sample
  // sees miss fraction 1.0 and escalates.
  auto a = queue.Submit(RandomRows(1, dim, 70));
  auto b = queue.Submit(RandomRows(1, dim, 71));
  EXPECT_EQ(a.get().status, ServeStatus::kOk);  // delivered, late
  EXPECT_EQ(b.get().status, ServeStatus::kOk);
  EXPECT_GE(clock.sleep_calls(), 1);

  auto c = queue.Submit(RandomRows(1, dim, 72));
  auto d = queue.Submit(RandomRows(1, dim, 73));
  EXPECT_EQ(c.get().status, ServeStatus::kOk);
  EXPECT_EQ(d.get().status, ServeStatus::kOk);
  EXPECT_GE(queue.health_rung(), 1);
}

// Chaos: a worker stall (delay at serve.batch.worker) expires queued
// deadlines; the pre-scoring check sheds them with a definite status.
TEST_F(OverloadTest, WorkerStallFaultShedsExpiredRequestsPreScoring) {
  ASSERT_TRUE(common::FaultInjector::Global()
                  .Configure("serve.batch.worker:delay:50@*")
                  .ok());
  const int64_t dim = 4;
  const auto store = EmbeddingStore::FromRows(16, dim, RandomRows(16, dim, 13));
  TopKRetriever retriever(&store);
  ManualClock clock;
  BatchQueueOptions options;
  options.k = 1;
  options.max_batch = 2;
  options.max_wait_ms = 5.0;
  options.deadline_ms = 20.0;  // < the 50 ms stall
  options.clock = &clock;
  BatchQueue queue(&retriever, options);

  auto a = queue.Submit(RandomRows(1, dim, 75));
  auto b = queue.Submit(RandomRows(1, dim, 76));
  EXPECT_EQ(a.get().status, ServeStatus::kDeadlineExceeded);
  EXPECT_EQ(b.get().status, ServeStatus::kDeadlineExceeded);
}

// Chaos: a reject storm at admission. Every future still resolves with a
// definite status and the queue serves normally once the storm passes.
TEST_F(OverloadTest, RejectStormAtAdmissionLeavesNoAmbiguousOutcome) {
  ASSERT_TRUE(common::FaultInjector::Global()
                  .Configure("serve.submit.admit:fail@*")
                  .ok());
  const int64_t dim = 4;
  const auto store = EmbeddingStore::FromRows(16, dim, RandomRows(16, dim, 14));
  TopKRetriever retriever(&store);
  BatchQueueOptions options;
  options.k = 1;
  BatchQueue queue(&retriever, options);

  for (int i = 0; i < 16; ++i) {
    const auto result = queue.Submit(RandomRows(1, dim, 100 + i)).get();
    EXPECT_EQ(result.status, ServeStatus::kRejectedQueueFull);
    EXPECT_TRUE(result.ids.empty());
  }
  common::FaultInjector::Global().Clear();
  EXPECT_EQ(queue.Submit(RandomRows(1, dim, 120)).get().status,
            ServeStatus::kOk);
}

// TSan stress: submitters racing a shedding governor, injected admission
// failures and a teardown. Every future resolves with a definite status;
// the pending queue never exceeds max_pending (checked via admitted
// arithmetic: ok + shed == submitted).
TEST_F(OverloadTest, ConcurrentOverloadChaosResolvesEveryFuture) {
  ASSERT_TRUE(common::FaultInjector::Global()
                  .Configure("serve.submit.admit:fail@7")
                  .ok());
  const int64_t dim = 6;
  const auto store = EmbeddingStore::FromRows(32, dim, RandomRows(32, dim, 15));
  TopKRetriever retriever(&store);
  for (int round = 0; round < 4; ++round) {
    obs::MetricsRegistry registry;
    ServeStats stats(&registry);
    BatchQueueOptions options;
    options.k = 2;
    options.max_batch = 4;
    options.max_wait_ms = 0.1;
    options.max_pending = 8;
    options.deadline_ms = 5.0;
    options.overload.enabled = true;
    options.overload.sample_window_ms = 1.0;
    options.overload.recover_hold_ms = 2.0;
    BatchQueue queue(&retriever, options, &stats);

    constexpr int kThreads = 4;
    constexpr int kPerThread = 50;
    std::vector<std::vector<std::future<TopKResult>>> futures(kThreads);
    std::vector<std::thread> submitters;
    for (int t = 0; t < kThreads; ++t) {
      submitters.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          futures[t].push_back(
              queue.Submit(RandomRows(1, dim, 500 + t * kPerThread + i)));
        }
      });
    }
    std::thread closer([&] { queue.Shutdown(); });
    for (auto& s : submitters) s.join();
    closer.join();

    int64_t definite = 0;
    for (auto& per_thread : futures) {
      for (auto& f : per_thread) {
        ASSERT_TRUE(f.valid());
        const TopKResult result = f.get();  // must not throw or hang
        switch (result.status) {
          case ServeStatus::kOk:
            EXPECT_EQ(result.ids.size(), 2u);
            break;
          case ServeStatus::kRejectedQueueFull:
          case ServeStatus::kDeadlineExceeded:
          case ServeStatus::kShutdown:
            EXPECT_TRUE(result.ids.empty());
            break;
          case ServeStatus::kInvalidQuery:
            ADD_FAILURE() << "no invalid queries were submitted";
            break;
        }
        ++definite;
      }
    }
    EXPECT_EQ(definite, kThreads * kPerThread);
  }
}

}  // namespace
}  // namespace desalign::serve
