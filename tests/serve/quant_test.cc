// Property and contract tests for the quantized embedding path: the
// QuantizeRow round-trip error bound, the bf16 codec, the int8 dot kernel
// (scalar vs AVX2 bit-equality), query sanitization, and the
// EmbeddingStore::Quantize / Save / Load / serve pipeline.

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/checkpoint.h"
#include "nn/quant.h"
#include "serve/embedding_store.h"
#include "serve/row_source.h"
#include "serve/scoring.h"
#include "serve/topk.h"
#include "tensor/kernels/dispatch.h"
#include "tensor/tensor.h"

namespace desalign::serve {
namespace {

using nn::TensorDtype;
using nn::quant::Bf16DecodeRow;
using nn::quant::Bf16EncodeRow;
using nn::quant::Bf16FromFloat;
using nn::quant::DequantizeRow;
using nn::quant::FloatFromBf16;
using nn::quant::QuantizeRow;

constexpr float kInf = std::numeric_limits<float>::infinity();
constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();

std::vector<float> RandomRow(int64_t d, uint64_t seed, float amp = 1.0f) {
  common::Rng rng(seed);
  std::vector<float> row(static_cast<size_t>(d));
  for (auto& v : row) v = amp * rng.UniformF(-1.0f, 1.0f);
  return row;
}

// |row[j] - scale * code[j]| <= scale / 2, with a one-ulp-ish slack for
// the float divide/multiply in the round trip.
void ExpectRoundTripWithinHalfScale(const std::vector<float>& row) {
  const int64_t d = static_cast<int64_t>(row.size());
  std::vector<int8_t> codes(row.size());
  float scale = -1.0f;
  ASSERT_TRUE(QuantizeRow(row.data(), d, codes.data(), &scale).ok());
  ASSERT_GE(scale, 0.0f);
  std::vector<float> back(row.size());
  DequantizeRow(codes.data(), d, scale, back.data());
  const float slack = scale * 1e-5f;
  for (int64_t j = 0; j < d; ++j) {
    EXPECT_LE(std::fabs(row[static_cast<size_t>(j)] -
                        back[static_cast<size_t>(j)]),
              scale * 0.5f + slack)
        << "col " << j << " of " << d;
    EXPECT_GE(codes[static_cast<size_t>(j)], -127);
    EXPECT_LE(codes[static_cast<size_t>(j)], 127);
  }
}

TEST(QuantizeRowTest, RandomRowsRoundTripWithinHalfScale) {
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    const int64_t d = 1 + static_cast<int64_t>(seed % 130);
    ExpectRoundTripWithinHalfScale(RandomRow(d, seed));
  }
}

TEST(QuantizeRowTest, LargeMagnitudeRowsRoundTrip) {
  ExpectRoundTripWithinHalfScale(RandomRow(64, 7, 1e30f));
  ExpectRoundTripWithinHalfScale(RandomRow(64, 8, 1e-30f));
  // Mixed huge positive / huge negative.
  std::vector<float> row = {3e37f, -3e37f, 1.0f, 0.0f, -2e36f};
  ExpectRoundTripWithinHalfScale(row);
}

TEST(QuantizeRowTest, AllZeroRowGetsScaleZeroAndExactZeros) {
  std::vector<float> row(32, 0.0f);
  std::vector<int8_t> codes(row.size(), 99);
  float scale = -1.0f;
  ASSERT_TRUE(QuantizeRow(row.data(), 32, codes.data(), &scale).ok());
  EXPECT_EQ(scale, 0.0f);
  for (const int8_t c : codes) EXPECT_EQ(c, 0);
  std::vector<float> back(row.size(), 1.0f);
  DequantizeRow(codes.data(), 32, scale, back.data());
  for (const float v : back) EXPECT_EQ(v, 0.0f);
}

TEST(QuantizeRowTest, AllEqualRowSaturatesToFullScale) {
  std::vector<float> row(16, 0.75f);
  std::vector<int8_t> codes(row.size());
  float scale = 0.0f;
  ASSERT_TRUE(QuantizeRow(row.data(), 16, codes.data(), &scale).ok());
  // maxabs / 127 scale means every element lands exactly on code 127.
  EXPECT_FLOAT_EQ(scale, 0.75f / 127.0f);
  for (const int8_t c : codes) EXPECT_EQ(c, 127);
  std::vector<float> back(16);
  DequantizeRow(codes.data(), 16, scale, back.data());
  for (const float v : back) EXPECT_NEAR(v, 0.75f, 0.75f * 1e-6f);
}

TEST(QuantizeRowTest, SingleElementRow) {
  const float v = -0.3125f;
  int8_t code = 0;
  float scale = 0.0f;
  ASSERT_TRUE(QuantizeRow(&v, 1, &code, &scale).ok());
  EXPECT_EQ(code, -127);
  float back = 0.0f;
  DequantizeRow(&code, 1, scale, &back);
  EXPECT_NEAR(back, v, std::fabs(v) * 1e-6f);
}

TEST(QuantizeRowTest, NonFiniteRowsRejected) {
  // Table rows with NaN/inf are training bugs: REJECT, never saturate.
  for (const float poison : {kNaN, kInf, -kInf}) {
    std::vector<float> row = RandomRow(8, 3);
    row[5] = poison;
    std::vector<int8_t> codes(row.size());
    float scale = 0.0f;
    const auto status = QuantizeRow(row.data(), 8, codes.data(), &scale);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), common::StatusCode::kInvalidArgument);
  }
}

TEST(Bf16Test, EncodeDecodeRoundTripIsExactForBf16Values) {
  // Values already representable in bf16 survive the round trip exactly.
  for (const float v :
       {0.0f, -0.0f, 1.0f, -2.5f, 0.15625f, 1024.0f,
        std::ldexp(1.0f, 100), -std::ldexp(1.75f, -100)}) {
    EXPECT_EQ(FloatFromBf16(Bf16FromFloat(v)), v) << v;
  }
}

TEST(Bf16Test, RoundsToNearestEven) {
  // bf16 spacing at 1.0 is 2^-7; 1.0 + 2^-8 sits exactly halfway between
  // 1.0 (even mantissa) and 1.0078125 (odd), so RNE picks 1.0.
  EXPECT_EQ(FloatFromBf16(Bf16FromFloat(1.00390625f)), 1.0f);
  // Just above halfway rounds up to the next bf16 value.
  EXPECT_EQ(FloatFromBf16(Bf16FromFloat(1.005f)), 1.0078125f);
  // The next halfway point ties to the even neighbour above.
  EXPECT_EQ(FloatFromBf16(Bf16FromFloat(1.01171875f)), 1.015625f);
}

TEST(Bf16Test, NaNStaysNaNAndRowCodecMatchesScalar) {
  EXPECT_TRUE(std::isnan(FloatFromBf16(Bf16FromFloat(kNaN))));
  const auto row = RandomRow(37, 9);
  std::vector<uint16_t> enc(row.size());
  Bf16EncodeRow(row.data(), 37, enc.data());
  std::vector<float> dec(row.size());
  Bf16DecodeRow(enc.data(), 37, dec.data());
  for (size_t j = 0; j < row.size(); ++j) {
    EXPECT_EQ(enc[j], Bf16FromFloat(row[j]));
    EXPECT_EQ(dec[j], FloatFromBf16(enc[j]));
    EXPECT_NEAR(dec[j], row[j], std::fabs(row[j]) * 0.0079f);  // 2^-7
  }
}

TEST(DtypeTest, NamesAndParsingRoundTrip) {
  EXPECT_STREQ(nn::DtypeName(TensorDtype::kFloat32), "fp32");
  EXPECT_STREQ(nn::DtypeName(TensorDtype::kInt8), "int8");
  EXPECT_STREQ(nn::DtypeName(TensorDtype::kBf16), "bf16");
  EXPECT_EQ(nn::ParseDtype("fp32").value(), TensorDtype::kFloat32);
  EXPECT_EQ(nn::ParseDtype("float32").value(), TensorDtype::kFloat32);
  EXPECT_EQ(nn::ParseDtype("int8").value(), TensorDtype::kInt8);
  EXPECT_EQ(nn::ParseDtype("bf16").value(), TensorDtype::kBf16);
  EXPECT_EQ(nn::ParseDtype("bfloat16").value(), TensorDtype::kBf16);
  EXPECT_FALSE(nn::ParseDtype("fp16").ok());
}

class IsaOverrideGuard {
 public:
  ~IsaOverrideGuard() {
    tensor::kernels::SetIsaOverride(tensor::kernels::IsaLevel::kScalar,
                                    /*has_override=*/false);
  }
};

TEST(DotI8Test, ScalarAndAvx2AreBitIdentical) {
  IsaOverrideGuard guard;
  common::Rng rng(42);
  // Dimensions straddling the 16-lane AVX2 width, including tails.
  for (const int64_t d : {1, 7, 15, 16, 17, 31, 32, 33, 64, 100, 257}) {
    std::vector<int8_t> a(static_cast<size_t>(d)), b(a.size());
    for (auto& v : a) v = static_cast<int8_t>(rng.UniformInt(255) - 127);
    for (auto& v : b) v = static_cast<int8_t>(rng.UniformInt(255) - 127);
    tensor::kernels::SetIsaOverride(tensor::kernels::IsaLevel::kScalar);
    const int32_t scalar = scoring::DotI8(a.data(), b.data(), d);
    tensor::kernels::SetIsaOverride(tensor::kernels::IsaLevel::kAvx2);
    const int32_t vec = scoring::DotI8(a.data(), b.data(), d);
    EXPECT_EQ(scalar, vec) << "d=" << d;
    // Saturating extremes: |sum| = d * 127^2 must not wrap in int32.
    std::vector<int8_t> hi(static_cast<size_t>(d), 127);
    tensor::kernels::SetIsaOverride(tensor::kernels::IsaLevel::kScalar);
    const int32_t s2 = scoring::DotI8(hi.data(), hi.data(), d);
    tensor::kernels::SetIsaOverride(tensor::kernels::IsaLevel::kAvx2);
    EXPECT_EQ(s2, scoring::DotI8(hi.data(), hi.data(), d));
    EXPECT_EQ(s2, static_cast<int32_t>(d) * 127 * 127);
  }
}

TEST(QuantizeQueryTest, SanitizesNonFiniteCoordinatesToZero) {
  // Queries are caller input: poisoned coordinates degrade to 0 instead of
  // poisoning the scan (unlike table rows, which QuantizeRow rejects).
  std::vector<float> q = {0.5f, kNaN, -0.25f, kInf, 0.0f, -kInf, 1.0f, 0.1f};
  const auto quantized =
      scoring::QuantizeQuery(q.data(), static_cast<int64_t>(q.size()));
  ASSERT_EQ(quantized.codes.size(), q.size());
  EXPECT_EQ(quantized.codes[1], 0);
  EXPECT_EQ(quantized.codes[3], 0);
  EXPECT_EQ(quantized.codes[5], 0);
  // Finite coords still quantize against the finite maxabs (1.0 here).
  EXPECT_EQ(quantized.codes[6], 127);
  EXPECT_FLOAT_EQ(quantized.scale, 1.0f / 127.0f);

  // An all-non-finite query degrades to the all-zero query.
  std::vector<float> bad = {kNaN, kInf, -kInf};
  const auto z = scoring::QuantizeQuery(bad.data(), 3);
  EXPECT_EQ(z.scale, 0.0f);
  for (const int8_t c : z.codes) EXPECT_EQ(c, 0);
}

TEST(ResolveRerankCandidatesTest, PolicyMatrix) {
  // auto: min(n, max(4k, 64))
  EXPECT_EQ(ResolveRerankCandidates(0, 10, 100000), 64);
  EXPECT_EQ(ResolveRerankCandidates(0, 50, 100000), 200);
  EXPECT_EQ(ResolveRerankCandidates(0, 10, 40), 40);
  // explicit: clamped to [k, n]
  EXPECT_EQ(ResolveRerankCandidates(500, 10, 100000), 500);
  EXPECT_EQ(ResolveRerankCandidates(5, 10, 100000), 10);
  EXPECT_EQ(ResolveRerankCandidates(500, 10, 200), 200);
  // exact: all rows
  EXPECT_EQ(ResolveRerankCandidates(-1, 10, 100000), 100000);
}

class QuantStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("desalign_quant_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string Path(const std::string& tag) {
    return (dir_ / (tag + ".dckpt")).string();
  }
  std::filesystem::path dir_;
};

EmbeddingStore MakeStore(int64_t rows, int64_t dim, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<float> data(static_cast<size_t>(rows * dim));
  for (auto& v : data) v = rng.UniformF(-1.0f, 1.0f);
  return EmbeddingStore::FromRows(rows, dim, std::move(data));
}

TEST_F(QuantStoreTest, QuantizeSaveLoadRoundTripsBitExactly) {
  const auto store = MakeStore(200, 24, 5);
  for (const TensorDtype dtype : {TensorDtype::kInt8, TensorDtype::kBf16}) {
    auto quantized = store.Quantize(dtype);
    ASSERT_TRUE(quantized.ok()) << quantized.status().ToString();
    const EmbeddingSnapshot before = quantized.value().Snapshot();
    ASSERT_EQ(before.dtype(), dtype);

    const std::string path = Path(nn::DtypeName(dtype));
    ASSERT_TRUE(quantized.value().Save(path).ok());
    auto loaded = EmbeddingStore::Load(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    const EmbeddingSnapshot after = loaded.value().Snapshot();
    ASSERT_EQ(after.dtype(), dtype);
    ASSERT_EQ(after.size(), 200);
    ASSERT_EQ(after.dim(), 24);
    // Codes, scales and bf16 patterns survive the disk round trip
    // bit for bit — the loader must not renormalize quantized records.
    for (int64_t i = 0; i < 200; ++i) {
      std::vector<float> sa(24), sb(24);
      const float* ra = before.RowAsFloat(i, sa.data());
      const float* rb = after.RowAsFloat(i, sb.data());
      for (int64_t j = 0; j < 24; ++j) {
        ASSERT_EQ(ra[j], rb[j]) << "row " << i << " col " << j;
      }
    }
  }
}

TEST_F(QuantStoreTest, QuantizeRejectsRequantization) {
  const auto store = MakeStore(16, 8, 6);
  auto int8_store = store.Quantize(TensorDtype::kInt8);
  ASSERT_TRUE(int8_store.ok());
  // int8 -> bf16 would stack rounding error invisibly: refuse.
  auto again = int8_store.value().Quantize(TensorDtype::kBf16);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), common::StatusCode::kInvalidArgument);
  // fp32 -> fp32 is a cheap shared-table copy.
  auto same = store.Quantize(TensorDtype::kFloat32);
  ASSERT_TRUE(same.ok());
  EXPECT_EQ(same.value().Snapshot().dtype(), TensorDtype::kFloat32);
}

TEST_F(QuantStoreTest, MemoryBytesShrinkAsPromised) {
  const int64_t rows = 1000, dim = 64;
  const auto store = MakeStore(rows, dim, 7);
  const size_t fp32 = store.Snapshot().MemoryBytes();
  EXPECT_EQ(fp32, static_cast<size_t>(rows * dim) * sizeof(float));
  const size_t bf16 =
      store.Quantize(TensorDtype::kBf16).value().Snapshot().MemoryBytes();
  EXPECT_EQ(bf16, static_cast<size_t>(rows * dim) * sizeof(uint16_t));
  const size_t int8 =
      store.Quantize(TensorDtype::kInt8).value().Snapshot().MemoryBytes();
  EXPECT_EQ(int8, static_cast<size_t>(rows * dim) * sizeof(int8_t) +
                      static_cast<size_t>(rows) * sizeof(float));
  // The dim=64 footprint ratio the acceptance gate asserts at 10^6 rows.
  EXPECT_GE(static_cast<double>(fp32) / static_cast<double>(int8), 3.5);
}

TEST_F(QuantStoreTest, ExactModeMatchesBruteForceOverQuantizedTable) {
  const auto store = MakeStore(500, 32, 8);
  for (const TensorDtype dtype : {TensorDtype::kInt8, TensorDtype::kBf16}) {
    EmbeddingStore qstore = std::move(store.Quantize(dtype).value());
    TopKOptions exact;
    exact.rerank_candidates = -1;
    const TopKRetriever retriever(&qstore, exact);
    common::Rng rng(9);
    std::vector<float> queries(static_cast<size_t>(8 * 32));
    for (auto& v : queries) v = rng.UniformF(-1.0f, 1.0f);
    const auto fast = retriever.Retrieve(queries.data(), 8, 10);
    const auto ref = retriever.RetrieveBruteForce(queries.data(), 8, 10);
    ASSERT_EQ(fast.size(), ref.size());
    for (size_t i = 0; i < fast.size(); ++i) {
      EXPECT_EQ(fast[i].ids, ref[i].ids) << "query " << i;
      EXPECT_EQ(fast[i].scores, ref[i].scores) << "query " << i;
    }
  }
}

TEST_F(QuantStoreTest, Int8RetrievalRecallsTrueNeighborsWithSmallRerank) {
  const auto store = MakeStore(2000, 32, 10);
  const TopKRetriever truth_retriever(&store);
  common::Rng rng(11);
  constexpr int64_t kQueries = 16, kTop = 5;
  std::vector<float> queries(static_cast<size_t>(kQueries * 32));
  for (auto& v : queries) v = rng.UniformF(-1.0f, 1.0f);
  const auto truth =
      truth_retriever.RetrieveBruteForce(queries.data(), kQueries, kTop);

  EmbeddingStore qstore =
      std::move(store.Quantize(TensorDtype::kInt8).value());
  const TopKRetriever retriever(&qstore);  // default auto rerank
  const auto got = retriever.Retrieve(queries.data(), kQueries, kTop);
  int64_t hit = 0, total = 0;
  for (int64_t i = 0; i < kQueries; ++i) {
    for (const int64_t id : truth[static_cast<size_t>(i)].ids) {
      ++total;
      const auto& ids = got[static_cast<size_t>(i)].ids;
      hit += std::count(ids.begin(), ids.end(), id);
    }
  }
  // Quantization may flip near-ties but must not lose real neighbors.
  EXPECT_GE(static_cast<double>(hit) / static_cast<double>(total), 0.9);
}

std::vector<float> RandomQueries(int64_t count, int64_t dim, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<float> q(static_cast<size_t>(count * dim));
  for (auto& v : q) v = rng.UniformF(-1.0f, 1.0f);
  return q;
}

void ExpectBitExact(const std::vector<TopKResult>& got,
                    const std::vector<TopKResult>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].ids, want[i].ids) << "query " << i;
    EXPECT_EQ(got[i].scores, want[i].scores) << "query " << i;
  }
}

TEST(RowSourceTest, SnapshotSourceExactModeMatchesTrueFp32BruteForce) {
  const auto store = MakeStore(1200, 24, 21);
  const TopKRetriever fp32_brute(&store);
  const auto queries = RandomQueries(16, 24, 22);
  const auto truth = fp32_brute.RetrieveBruteForce(queries.data(), 16, 7);

  EmbeddingStore qstore =
      std::move(store.Quantize(TensorDtype::kInt8).value());
  const SnapshotRowSource source(store.Snapshot());
  TopKOptions options;
  options.rerank_candidates = -1;
  options.rerank_source = &source;
  const TopKRetriever refined(&qstore, options);
  // Full-probe int8 scan + full-precision re-rank IS fp32 brute force,
  // bit for bit — not merely brute force over the dequantized table.
  ExpectBitExact(refined.Retrieve(queries.data(), 16, 7), truth);
}

TEST_F(QuantStoreTest, CheckpointSourceReadsRowsBitExactly) {
  const auto store = MakeStore(300, 20, 23);
  const std::string v2_path = Path("fp32_v2");
  ASSERT_TRUE(store.Save(v2_path).ok());

  // A v3 file whose tensor 0 is an fp32 record exercises the other header
  // layout the source understands.
  const EmbeddingSnapshot snap = store.Snapshot();
  nn::TrainingCheckpoint ckpt;
  auto q = nn::QuantizeTensor(
      *tensor::Tensor::FromData(300, 20, snap.data()),
      TensorDtype::kFloat32);
  ASSERT_TRUE(q.ok());
  ckpt.quant_tensors.push_back(std::move(q).value());
  const std::string v3_path = Path("fp32_v3");
  ASSERT_TRUE(nn::SaveCheckpoint(ckpt, v3_path).ok());

  for (const std::string& path : {v2_path, v3_path}) {
    auto opened = CheckpointRowSource::Open(path);
    ASSERT_TRUE(opened.ok()) << path << ": " << opened.status().ToString();
    const CheckpointRowSource source = std::move(opened).value();
    ASSERT_EQ(source.rows(), 300);
    ASSERT_EQ(source.dim(), 20);
    std::vector<float> row(20);
    for (const int64_t i : {int64_t{0}, int64_t{150}, int64_t{299}}) {
      ASSERT_TRUE(source.Row(i, row.data()));
      for (int64_t j = 0; j < 20; ++j) {
        ASSERT_EQ(row[static_cast<size_t>(j)], snap.row(i)[j])
            << path << " row " << i << " col " << j;
      }
    }
    // Out-of-range fetches fail instead of reading a neighbor's bytes.
    EXPECT_FALSE(source.Row(-1, row.data()));
    EXPECT_FALSE(source.Row(300, row.data()));
  }
}

TEST_F(QuantStoreTest, CheckpointBackedExactRerankMatchesFp32BruteForce) {
  const auto store = MakeStore(800, 16, 24);
  const std::string path = Path("refine_src");
  ASSERT_TRUE(store.Save(path).ok());
  auto opened = CheckpointRowSource::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const CheckpointRowSource source = std::move(opened).value();

  EmbeddingStore qstore =
      std::move(store.Quantize(TensorDtype::kInt8).value());
  TopKOptions options;
  options.rerank_candidates = -1;
  options.rerank_source = &source;
  const TopKRetriever refined(&qstore, options);
  const TopKRetriever fp32_brute(&store);
  const auto queries = RandomQueries(12, 16, 25);
  ExpectBitExact(refined.Retrieve(queries.data(), 12, 5),
                 fp32_brute.RetrieveBruteForce(queries.data(), 12, 5));
}

TEST_F(QuantStoreTest, CheckpointSourceRejectsBadFiles) {
  auto missing = CheckpointRowSource::Open(Path("does_not_exist"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), common::StatusCode::kIoError);

  // A v3 file whose tensor 0 is quantized holds no fp32 rows to serve.
  const auto store = MakeStore(64, 8, 26);
  EmbeddingStore int8_store =
      std::move(store.Quantize(TensorDtype::kInt8).value());
  const std::string int8_path = Path("int8_only");
  ASSERT_TRUE(int8_store.Save(int8_path).ok());
  auto not_fp32 = CheckpointRowSource::Open(int8_path);
  ASSERT_FALSE(not_fp32.ok());
  EXPECT_EQ(not_fp32.status().code(),
            common::StatusCode::kInvalidArgument);

  const std::string good_path = Path("good");
  ASSERT_TRUE(store.Save(good_path).ok());
  std::ifstream in(good_path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();

  // Truncation loses the end marker; a flipped payload bit trips the
  // footer CRC the open-time validation recomputes.
  const std::string truncated_path = Path("truncated");
  std::ofstream(truncated_path, std::ios::binary)
      << bytes.substr(0, bytes.size() / 2);
  auto truncated = CheckpointRowSource::Open(truncated_path);
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), common::StatusCode::kIoError);

  std::string corrupt = bytes;
  corrupt[corrupt.size() / 2] =
      static_cast<char>(corrupt[corrupt.size() / 2] ^ 0x10);
  const std::string corrupt_path = Path("corrupt");
  std::ofstream(corrupt_path, std::ios::binary) << corrupt;
  auto flipped = CheckpointRowSource::Open(corrupt_path);
  ASSERT_FALSE(flipped.ok());
  EXPECT_EQ(flipped.status().code(), common::StatusCode::kIoError);
  EXPECT_NE(flipped.status().ToString().find("checksum"),
            std::string::npos);
}

class StubSource : public RowSource {
 public:
  StubSource(int64_t rows, int64_t dim, bool succeed)
      : rows_(rows), dim_(dim), succeed_(succeed) {}
  int64_t rows() const override { return rows_; }
  int64_t dim() const override { return dim_; }
  bool Row(int64_t, float*) const override { return succeed_; }

 private:
  int64_t rows_;
  int64_t dim_;
  bool succeed_;
};

TEST(RowSourceTest, MismatchedOrFailingSourceFallsBackToDequantizedRerank) {
  const auto store = MakeStore(400, 12, 27);
  EmbeddingStore qstore =
      std::move(store.Quantize(TensorDtype::kInt8).value());
  const auto queries = RandomQueries(8, 12, 28);
  const TopKRetriever raw(&qstore);
  const auto want = raw.Retrieve(queries.data(), 8, 5);

  // Shape mismatch (a reload swapped tables since the source was opened)
  // disables the source for the call; per-row fetch failures fall back
  // row by row. Either way the result is the self-contained re-rank.
  const StubSource wrong_shape(399, 12, /*succeed=*/true);
  const StubSource failing(400, 12, /*succeed=*/false);
  for (const RowSource* source : {static_cast<const RowSource*>(&wrong_shape),
                                  static_cast<const RowSource*>(&failing)}) {
    TopKOptions options;
    options.rerank_source = source;
    const TopKRetriever refined(&qstore, options);
    ExpectBitExact(refined.Retrieve(queries.data(), 8, 5), want);
  }
}

}  // namespace
}  // namespace desalign::serve
