// Bit-exactness suite for the kernel layer: every kernel must produce
// byte-identical output to the serial scalar reference
// (kernels/reference.cc — the pre-kernel-layer ops.cc loops) under every
// ISA level the CPU supports and under multi-chunk parallel partitioning
// (4 threads with the grain forced to 1 so even 1x1 shapes split). Shapes
// deliberately include empty, single-row, single-column and 63/65-wide
// cases to hit vector-width remainders on both sides.

#include <cstring>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "tensor/kernels/dispatch.h"
#include "tensor/kernels/elementwise.h"
#include "tensor/kernels/gemm.h"
#include "tensor/kernels/reference.h"
#include "tensor/kernels/rowwise.h"

namespace desalign::tensor::kernels {
namespace {

struct Shape {
  int64_t n;
  int64_t c;
};

// 63/65 columns straddle the 8-lane AVX2 width; 129 forces a remainder
// after 16 full lanes; {0, x} and {1, 1} are the degenerate floors.
const Shape kShapes[] = {{0, 17}, {1, 1},  {1, 63},  {2, 65},
                         {7, 129}, {33, 64}, {128, 63}, {65, 65}};

std::vector<float> RandomVec(common::Rng& rng, size_t n, float lo = -2.0f,
                             float hi = 2.0f) {
  std::vector<float> v(n);
  for (auto& x : v) x = rng.UniformF(lo, hi);
  return v;
}

// Runs `kernel` under every ISA x partitioning configuration and asserts the
// bytes written into the output buffer match `ref` exactly. `base` seeds the
// output buffer so accumulating kernels are checked against a nonzero
// starting point.
void ExpectConfigsBitExact(const std::function<void(float*)>& kernel,
                           const std::function<void(float*)>& ref,
                           const std::vector<float>& base) {
  std::vector<float> expected = base;
  ref(expected.data());

  struct Config {
    IsaLevel isa;
    int threads;
  };
  std::vector<Config> configs = {{IsaLevel::kScalar, 1},
                                 {IsaLevel::kScalar, 4}};
  if (CpuSupportsAvx2()) {
    configs.push_back({IsaLevel::kAvx2, 1});
    configs.push_back({IsaLevel::kAvx2, 4});
  }
  for (const auto& config : configs) {
    common::ThreadPool::SetGlobalThreadCount(config.threads);
    // Grain 1 makes even tiny shapes span multiple chunks, exercising the
    // partition boundaries that a production grain would never hit here.
    SetForcedGrainForTesting(config.threads > 1 ? 1 : 0);
    SetIsaOverride(config.isa);
    std::vector<float> got = base;
    kernel(got.data());
    SetIsaOverride(IsaLevel::kScalar, /*has_override=*/false);
    SetForcedGrainForTesting(0);
    common::ThreadPool::SetGlobalThreadCount(0);
    ASSERT_EQ(got.size(), expected.size());
    // memcmp's pointer arguments are declared nonnull; an empty vector's
    // data() may be null, so the empty-shape cases must not reach it.
    EXPECT_TRUE(got.empty() ||
                std::memcmp(got.data(), expected.data(),
                            got.size() * sizeof(float)) == 0)
        << IsaName(config.isa) << " @" << config.threads
        << " threads diverged from the scalar reference";
  }
}

TEST(KernelsBitExactTest, BinaryElementwise) {
  common::Rng rng(101);
  for (const auto& s : kShapes) {
    const size_t n = static_cast<size_t>(s.n * s.c);
    auto a = RandomVec(rng, n);
    auto b = RandomVec(rng, n);
    for (auto& v : b) v = 1.5f + std::fabs(v);  // Div-safe denominator
    const std::vector<float> base(n, 0.0f);
    ExpectConfigsBitExact([&](float* y) { Add(a.data(), b.data(), y, n); },
                          [&](float* y) {
                            reference::Add(a.data(), b.data(), y, n);
                          },
                          base);
    ExpectConfigsBitExact([&](float* y) { Sub(a.data(), b.data(), y, n); },
                          [&](float* y) {
                            reference::Sub(a.data(), b.data(), y, n);
                          },
                          base);
    ExpectConfigsBitExact([&](float* y) { Mul(a.data(), b.data(), y, n); },
                          [&](float* y) {
                            reference::Mul(a.data(), b.data(), y, n);
                          },
                          base);
    ExpectConfigsBitExact([&](float* y) { Div(a.data(), b.data(), y, n); },
                          [&](float* y) {
                            reference::Div(a.data(), b.data(), y, n);
                          },
                          base);
  }
}

TEST(KernelsBitExactTest, ScalarAndUnaryElementwise) {
  common::Rng rng(102);
  for (const auto& s : kShapes) {
    const size_t n = static_cast<size_t>(s.n * s.c);
    auto x = RandomVec(rng, n);
    auto pos = RandomVec(rng, n, 0.05f, 3.0f);
    const std::vector<float> base(n, 0.0f);
    ExpectConfigsBitExact(
        [&](float* y) { Scale(x.data(), 1.7f, y, n); },
        [&](float* y) { reference::Scale(x.data(), 1.7f, y, n); }, base);
    ExpectConfigsBitExact(
        [&](float* y) { MulScalar(x.data(), -0.3f, y, n); },
        [&](float* y) { reference::MulScalar(x.data(), -0.3f, y, n); }, base);
    ExpectConfigsBitExact(
        [&](float* y) { AddScalar(x.data(), 0.9f, y, n); },
        [&](float* y) { reference::AddScalar(x.data(), 0.9f, y, n); }, base);
    ExpectConfigsBitExact(
        [&](float* y) { Relu(x.data(), y, n); },
        [&](float* y) { reference::Relu(x.data(), y, n); }, base);
    ExpectConfigsBitExact(
        [&](float* y) { LeakyRelu(x.data(), 0.2f, y, n); },
        [&](float* y) { reference::LeakyRelu(x.data(), 0.2f, y, n); }, base);
    ExpectConfigsBitExact(
        [&](float* y) { Sigmoid(x.data(), y, n); },
        [&](float* y) { reference::Sigmoid(x.data(), y, n); }, base);
    ExpectConfigsBitExact(
        [&](float* y) { Tanh(x.data(), y, n); },
        [&](float* y) { reference::Tanh(x.data(), y, n); }, base);
    ExpectConfigsBitExact(
        [&](float* y) { Exp(x.data(), y, n); },
        [&](float* y) { reference::Exp(x.data(), y, n); }, base);
    ExpectConfigsBitExact(
        [&](float* y) { LogEps(pos.data(), 1e-12f, y, n); },
        [&](float* y) { reference::LogEps(pos.data(), 1e-12f, y, n); }, base);
    ExpectConfigsBitExact(
        [&](float* y) { Square(x.data(), y, n); },
        [&](float* y) { reference::Square(x.data(), y, n); }, base);
    ExpectConfigsBitExact(
        [&](float* y) { Abs(x.data(), y, n); },
        [&](float* y) { reference::Abs(x.data(), y, n); }, base);
    ExpectConfigsBitExact(
        [&](float* y) { Clip(x.data(), -0.5f, 0.8f, y, n); },
        [&](float* y) { reference::Clip(x.data(), -0.5f, 0.8f, y, n); },
        base);
  }
}

TEST(KernelsBitExactTest, AccumulatingElementwise) {
  common::Rng rng(103);
  for (const auto& s : kShapes) {
    const size_t n = static_cast<size_t>(s.n * s.c);
    auto g = RandomVec(rng, n);
    auto x = RandomVec(rng, n);
    auto b = RandomVec(rng, n);
    for (auto& v : b) v = 1.5f + std::fabs(v);
    auto base = RandomVec(rng, n);  // accumulate onto nonzero contents
    ExpectConfigsBitExact(
        [&](float* out) { Accumulate(g.data(), out, n); },
        [&](float* out) { reference::Accumulate(g.data(), out, n); }, base);
    ExpectConfigsBitExact(
        [&](float* out) { AccumulateNeg(g.data(), out, n); },
        [&](float* out) { reference::AccumulateNeg(g.data(), out, n); },
        base);
    ExpectConfigsBitExact(
        [&](float* out) { Axpy(0.7f, x.data(), out, n); },
        [&](float* out) { reference::Axpy(0.7f, x.data(), out, n); }, base);
    ExpectConfigsBitExact(
        [&](float* out) { AccumulateConstant(0.45f, out, n); },
        [&](float* out) { reference::AccumulateConstant(0.45f, out, n); },
        base);
    ExpectConfigsBitExact(
        [&](float* out) { AccumulateScaled(g.data(), -1.2f, out, n); },
        [&](float* out) {
          reference::AccumulateScaled(g.data(), -1.2f, out, n);
        },
        base);
    ExpectConfigsBitExact(
        [&](float* out) { AccumulateProduct(g.data(), x.data(), out, n); },
        [&](float* out) {
          reference::AccumulateProduct(g.data(), x.data(), out, n);
        },
        base);
    ExpectConfigsBitExact(
        [&](float* out) { AccumulateQuotient(g.data(), b.data(), out, n); },
        [&](float* out) {
          reference::AccumulateQuotient(g.data(), b.data(), out, n);
        },
        base);
    ExpectConfigsBitExact(
        [&](float* out) { DivGradB(g.data(), x.data(), b.data(), out, n); },
        [&](float* out) {
          reference::DivGradB(g.data(), x.data(), b.data(), out, n);
        },
        base);
    ExpectConfigsBitExact(
        [&](float* out) { ReluGrad(g.data(), x.data(), out, n); },
        [&](float* out) { reference::ReluGrad(g.data(), x.data(), out, n); },
        base);
    ExpectConfigsBitExact(
        [&](float* out) { LeakyReluGrad(g.data(), x.data(), 0.2f, out, n); },
        [&](float* out) {
          reference::LeakyReluGrad(g.data(), x.data(), 0.2f, out, n);
        },
        base);
    ExpectConfigsBitExact(
        [&](float* out) { SigmoidGrad(g.data(), x.data(), out, n); },
        [&](float* out) {
          reference::SigmoidGrad(g.data(), x.data(), out, n);
        },
        base);
    ExpectConfigsBitExact(
        [&](float* out) { TanhGrad(g.data(), x.data(), out, n); },
        [&](float* out) { reference::TanhGrad(g.data(), x.data(), out, n); },
        base);
    ExpectConfigsBitExact(
        [&](float* out) { LogEpsGrad(g.data(), b.data(), 1e-12f, out, n); },
        [&](float* out) {
          reference::LogEpsGrad(g.data(), b.data(), 1e-12f, out, n);
        },
        base);
    ExpectConfigsBitExact(
        [&](float* out) { SquareGrad(g.data(), x.data(), out, n); },
        [&](float* out) {
          reference::SquareGrad(g.data(), x.data(), out, n);
        },
        base);
    ExpectConfigsBitExact(
        [&](float* out) { AbsGrad(g.data(), x.data(), out, n); },
        [&](float* out) { reference::AbsGrad(g.data(), x.data(), out, n); },
        base);
    ExpectConfigsBitExact(
        [&](float* out) { ClipGrad(g.data(), x.data(), -0.5f, 0.8f, out, n); },
        [&](float* out) {
          reference::ClipGrad(g.data(), x.data(), -0.5f, 0.8f, out, n);
        },
        base);
  }
}

TEST(KernelsBitExactTest, Broadcasts) {
  common::Rng rng(104);
  for (const auto& s : kShapes) {
    const int64_t n = s.n;
    const int64_t c = s.c;
    auto a = RandomVec(rng, static_cast<size_t>(n * c));
    auto g = RandomVec(rng, static_cast<size_t>(n * c));
    auto row = RandomVec(rng, static_cast<size_t>(c));
    auto col = RandomVec(rng, static_cast<size_t>(n));
    const std::vector<float> zero_nc(static_cast<size_t>(n * c), 0.0f);
    auto base_nc = RandomVec(rng, static_cast<size_t>(n * c));
    auto base_c = RandomVec(rng, static_cast<size_t>(c));
    auto base_n = RandomVec(rng, static_cast<size_t>(n));
    ExpectConfigsBitExact(
        [&](float* y) { AddRowBroadcast(a.data(), row.data(), y, n, c); },
        [&](float* y) {
          reference::AddRowBroadcast(a.data(), row.data(), y, n, c);
        },
        zero_nc);
    ExpectConfigsBitExact(
        [&](float* y) { MulRowBroadcast(a.data(), row.data(), y, n, c); },
        [&](float* y) {
          reference::MulRowBroadcast(a.data(), row.data(), y, n, c);
        },
        zero_nc);
    ExpectConfigsBitExact(
        [&](float* out) {
          MulRowBroadcastAcc(g.data(), row.data(), out, n, c);
        },
        [&](float* out) {
          reference::MulRowBroadcastAcc(g.data(), row.data(), out, n, c);
        },
        base_nc);
    ExpectConfigsBitExact(
        [&](float* y) { RowScale(a.data(), col.data(), y, n, c); },
        [&](float* y) { reference::RowScale(a.data(), col.data(), y, n, c); },
        zero_nc);
    ExpectConfigsBitExact(
        [&](float* out) { RowScaleAcc(g.data(), col.data(), out, n, c); },
        [&](float* out) {
          reference::RowScaleAcc(g.data(), col.data(), out, n, c);
        },
        base_nc);
    ExpectConfigsBitExact(
        [&](float* out) { RowDotAcc(g.data(), a.data(), out, n, c); },
        [&](float* out) {
          reference::RowDotAcc(g.data(), a.data(), out, n, c);
        },
        base_n);
    ExpectConfigsBitExact(
        [&](float* out) { AddColBroadcastAcc(col.data(), out, n, c); },
        [&](float* out) {
          reference::AddColBroadcastAcc(col.data(), out, n, c);
        },
        base_nc);
    ExpectConfigsBitExact(
        [&](float* out) { ColumnAcc(g.data(), out, n, c); },
        [&](float* out) { reference::ColumnAcc(g.data(), out, n, c); },
        base_c);
    ExpectConfigsBitExact(
        [&](float* out) { ColumnAccMul(g.data(), a.data(), out, n, c); },
        [&](float* out) {
          reference::ColumnAccMul(g.data(), a.data(), out, n, c);
        },
        base_c);
  }
}

TEST(KernelsBitExactTest, SoftmaxAndNormalization) {
  common::Rng rng(105);
  for (const auto& s : kShapes) {
    const int64_t n = s.n;
    const int64_t c = s.c;
    const size_t nc = static_cast<size_t>(n * c);
    auto x = RandomVec(rng, nc);
    auto g = RandomVec(rng, nc);
    auto gamma = RandomVec(rng, static_cast<size_t>(c), 0.5f, 1.5f);
    auto beta = RandomVec(rng, static_cast<size_t>(c));
    const std::vector<float> zero_nc(nc, 0.0f);
    auto base_nc = RandomVec(rng, nc);

    ExpectConfigsBitExact(
        [&](float* y) { RowSoftmax(x.data(), y, n, c); },
        [&](float* y) { reference::RowSoftmax(x.data(), y, n, c); },
        zero_nc);
    ExpectConfigsBitExact(
        [&](float* y) { RowLogSoftmax(x.data(), y, n, c); },
        [&](float* y) { reference::RowLogSoftmax(x.data(), y, n, c); },
        zero_nc);

    std::vector<float> soft(nc);
    std::vector<float> logsoft(nc);
    reference::RowSoftmax(x.data(), soft.data(), n, c);
    reference::RowLogSoftmax(x.data(), logsoft.data(), n, c);
    ExpectConfigsBitExact(
        [&](float* out) { RowSoftmaxGrad(soft.data(), g.data(), out, n, c); },
        [&](float* out) {
          reference::RowSoftmaxGrad(soft.data(), g.data(), out, n, c);
        },
        base_nc);
    ExpectConfigsBitExact(
        [&](float* out) {
          RowLogSoftmaxGrad(logsoft.data(), g.data(), out, n, c);
        },
        [&](float* out) {
          reference::RowLogSoftmaxGrad(logsoft.data(), g.data(), out, n, c);
        },
        base_nc);

    // RowL2Normalize writes y (n*c) and norms (n) — check both by packing
    // them into one output buffer.
    ExpectConfigsBitExact(
        [&](float* out) {
          RowL2Normalize(x.data(), 1e-12f, out, out + n * c, n, c);
        },
        [&](float* out) {
          reference::RowL2Normalize(x.data(), 1e-12f, out, out + n * c, n,
                                    c);
        },
        std::vector<float>(nc + static_cast<size_t>(n), 0.0f));
    std::vector<float> l2y(nc);
    std::vector<float> norms(static_cast<size_t>(n));
    reference::RowL2Normalize(x.data(), 1e-12f, l2y.data(), norms.data(), n,
                              c);
    ExpectConfigsBitExact(
        [&](float* out) {
          RowL2NormalizeGrad(l2y.data(), g.data(), norms.data(), out, n, c);
        },
        [&](float* out) {
          reference::RowL2NormalizeGrad(l2y.data(), g.data(), norms.data(),
                                        out, n, c);
        },
        base_nc);

    // LayerNormForward writes y, xhat (both n*c) and inv_sigma (n).
    ExpectConfigsBitExact(
        [&](float* out) {
          LayerNormForward(x.data(), gamma.data(), beta.data(), 1e-5f, out,
                           out + n * c, out + 2 * n * c, n, c);
        },
        [&](float* out) {
          reference::LayerNormForward(x.data(), gamma.data(), beta.data(),
                                      1e-5f, out, out + n * c,
                                      out + 2 * n * c, n, c);
        },
        std::vector<float>(2 * nc + static_cast<size_t>(n), 0.0f));
    std::vector<float> lny(nc);
    std::vector<float> xhat(nc);
    std::vector<float> inv_sigma(static_cast<size_t>(n));
    reference::LayerNormForward(x.data(), gamma.data(), beta.data(), 1e-5f,
                                lny.data(), xhat.data(), inv_sigma.data(), n,
                                c);
    ExpectConfigsBitExact(
        [&](float* out) {
          LayerNormGradX(g.data(), gamma.data(), xhat.data(),
                         inv_sigma.data(), out, n, c);
        },
        [&](float* out) {
          reference::LayerNormGradX(g.data(), gamma.data(), xhat.data(),
                                    inv_sigma.data(), out, n, c);
        },
        base_nc);
  }
}

TEST(KernelsBitExactTest, GatherScatterTranspose) {
  common::Rng rng(106);
  for (const auto& s : kShapes) {
    const int64_t n = std::max<int64_t>(s.n, 1);  // gather source rows
    const int64_t c = s.c;
    const int64_t e = s.n * 2 + 1;  // more indices than rows → duplicates
    auto a = RandomVec(rng, static_cast<size_t>(n * c));
    auto g = RandomVec(rng, static_cast<size_t>(e * c));
    std::vector<int64_t> indices(static_cast<size_t>(e));
    for (auto& i : indices) i = rng.UniformInt(n);
    auto base_nc = RandomVec(rng, static_cast<size_t>(n * c));
    auto base_ec = RandomVec(rng, static_cast<size_t>(e * c));
    ExpectConfigsBitExact(
        [&](float* y) { GatherRows(a.data(), indices.data(), y, e, c); },
        [&](float* y) {
          reference::GatherRows(a.data(), indices.data(), y, e, c);
        },
        std::vector<float>(static_cast<size_t>(e * c), 0.0f));
    // Duplicate indices: the column-partitioned scatter must reproduce the
    // serial ascending-i accumulation order per column exactly.
    ExpectConfigsBitExact(
        [&](float* out) {
          ScatterAddRows(g.data(), indices.data(), out, e, c);
        },
        [&](float* out) {
          reference::ScatterAddRows(g.data(), indices.data(), out, e, c);
        },
        base_nc);
    ExpectConfigsBitExact(
        [&](float* out) {
          GatherRowsAcc(a.data(), indices.data(), out, e, c);
        },
        [&](float* out) {
          reference::GatherRowsAcc(a.data(), indices.data(), out, e, c);
        },
        base_ec);

    const int64_t m = s.n;
    ExpectConfigsBitExact(
        [&](float* y) { Transpose(a.data(), y, m, c); },
        [&](float* y) { reference::Transpose(a.data(), y, m, c); },
        std::vector<float>(static_cast<size_t>(m * c), 0.0f));
    auto gt = RandomVec(rng, static_cast<size_t>(m * c));
    auto base_mc = RandomVec(rng, static_cast<size_t>(m * c));
    ExpectConfigsBitExact(
        [&](float* out) { TransposeAcc(gt.data(), out, m, c); },
        [&](float* out) { reference::TransposeAcc(gt.data(), out, m, c); },
        base_mc);
  }
}

TEST(KernelsBitExactTest, StridedCopies) {
  // reference.cc has no strided variants (the old ops.cc inlined these
  // loops), so the expected values are computed with local serial loops.
  common::Rng rng(107);
  const int64_t n = 9;
  const int64_t stride = 13;
  const int64_t c = 5;
  auto src = RandomVec(rng, static_cast<size_t>(n * stride));
  auto dense = RandomVec(rng, static_cast<size_t>(n * c));

  std::vector<float> expected_dense(static_cast<size_t>(n * c), 0.0f);
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t j = 0; j < c; ++j) {
      expected_dense[r * c + j] = src[r * stride + j];
    }
  }
  ExpectConfigsBitExact(
      [&](float* dst) {
        CopyStridedToDense(src.data(), stride, dst, n, c);
      },
      [&](float* dst) {
        std::memcpy(dst, expected_dense.data(),
                    expected_dense.size() * sizeof(float));
      },
      std::vector<float>(static_cast<size_t>(n * c), 0.0f));

  auto base_strided = RandomVec(rng, static_cast<size_t>(n * stride));
  std::vector<float> expected_strided = base_strided;
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t j = 0; j < c; ++j) {
      expected_strided[r * stride + j] = dense[r * c + j];
    }
  }
  ExpectConfigsBitExact(
      [&](float* dst) { CopyDenseToStrided(dense.data(), dst, stride, n, c); },
      [&](float* dst) {
        std::memcpy(dst, expected_strided.data(),
                    expected_strided.size() * sizeof(float));
      },
      base_strided);

  auto base_acc = RandomVec(rng, static_cast<size_t>(n * c));
  std::vector<float> expected_acc = base_acc;
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t j = 0; j < c; ++j) {
      expected_acc[r * c + j] += src[r * stride + j];
    }
  }
  ExpectConfigsBitExact(
      [&](float* out) { AccStridedToDense(src.data(), stride, out, n, c); },
      [&](float* out) {
        std::memcpy(out, expected_acc.data(),
                    expected_acc.size() * sizeof(float));
      },
      base_acc);

  auto base_acc2 = RandomVec(rng, static_cast<size_t>(n * stride));
  std::vector<float> expected_acc2 = base_acc2;
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t j = 0; j < c; ++j) {
      expected_acc2[r * stride + j] += dense[r * c + j];
    }
  }
  ExpectConfigsBitExact(
      [&](float* out) { AccDenseToStrided(dense.data(), out, stride, n, c); },
      [&](float* out) {
        std::memcpy(out, expected_acc2.data(),
                    expected_acc2.size() * sizeof(float));
      },
      base_acc2);
}

TEST(KernelsBitExactTest, MatMulForwardAndBackward) {
  common::Rng rng(108);
  struct Mkn {
    int64_t m, k, n;
  };
  const Mkn shapes[] = {{1, 1, 1}, {3, 5, 2}, {7, 63, 33}, {16, 65, 17},
                        {33, 32, 65}};
  for (const auto& s : shapes) {
    auto a = RandomVec(rng, static_cast<size_t>(s.m * s.k));
    auto b = RandomVec(rng, static_cast<size_t>(s.k * s.n));
    auto g = RandomVec(rng, static_cast<size_t>(s.m * s.n));
    // The forward skips exact-zero a elements; plant some to keep that
    // branch equivalent on every path.
    for (size_t i = 0; i < a.size(); i += 7) a[i] = 0.0f;
    ExpectConfigsBitExact(
        [&](float* y) { MatMul(a.data(), b.data(), y, s.m, s.k, s.n); },
        [&](float* y) {
          reference::MatMul(a.data(), b.data(), y, s.m, s.k, s.n);
        },
        std::vector<float>(static_cast<size_t>(s.m * s.n), 0.0f));
    auto base_ga = RandomVec(rng, static_cast<size_t>(s.m * s.k));
    ExpectConfigsBitExact(
        [&](float* ga) {
          MatMulGradA(g.data(), b.data(), ga, s.m, s.k, s.n);
        },
        [&](float* ga) {
          reference::MatMulGradA(g.data(), b.data(), ga, s.m, s.k, s.n);
        },
        base_ga);
    auto base_gb = RandomVec(rng, static_cast<size_t>(s.k * s.n));
    ExpectConfigsBitExact(
        [&](float* gb) {
          MatMulGradB(g.data(), a.data(), gb, s.m, s.k, s.n);
        },
        [&](float* gb) {
          reference::MatMulGradB(g.data(), a.data(), gb, s.m, s.k, s.n);
        },
        base_gb);
  }
}

}  // namespace
}  // namespace desalign::tensor::kernels
