// Numerical gradient checks: every differentiable op is verified against
// central finite differences, individually and in representative
// compositions (the ones the models actually build).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "tensor/init.h"
#include "tensor/kernels/dispatch.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "testing/grad_check.h"

namespace desalign::tensor {
namespace {

using desalign::testing::CheckGradients;

TensorPtr RandomParam(int64_t r, int64_t c, uint64_t seed,
                      float scale = 1.0f) {
  common::Rng rng(seed);
  auto t = Tensor::Create(r, c, /*requires_grad=*/true);
  FillNormal(*t, rng, 0.0f, scale);
  return t;
}

TEST(GradCheckTest, AddSubMul) {
  auto a = RandomParam(3, 4, 1);
  auto b = RandomParam(3, 4, 2);
  CheckGradients({a, b}, [&] { return Sum(Mul(Add(a, b), Sub(a, b))); });
}

TEST(GradCheckTest, Div) {
  auto a = RandomParam(2, 3, 3);
  auto b = RandomParam(2, 3, 4);
  for (auto& v : b->data()) v = 1.5f + std::fabs(v);  // keep away from zero
  CheckGradients({a, b}, [&] { return Sum(Div(a, b)); });
}

TEST(GradCheckTest, RowAndColBroadcasts) {
  auto a = RandomParam(3, 4, 5);
  auto row = RandomParam(1, 4, 6);
  auto col = RandomParam(3, 1, 7);
  CheckGradients({a, row, col}, [&] {
    return Sum(MulColVector(MulRowVector(AddRowVector(a, row), row), col));
  });
}

TEST(GradCheckTest, MatMul) {
  auto a = RandomParam(3, 4, 8);
  auto b = RandomParam(4, 2, 9);
  CheckGradients({a, b}, [&] { return Sum(MatMul(a, b)); });
}

TEST(GradCheckTest, MatMulChainWithTranspose) {
  auto a = RandomParam(3, 3, 10, 0.5f);
  CheckGradients({a}, [&] { return Sum(MatMul(a, Transpose(a))); });
}

TEST(GradCheckTest, Nonlinearities) {
  auto a = RandomParam(3, 3, 11);
  // Shift away from the ReLU kink to keep finite differences accurate.
  for (auto& v : a->data()) {
    if (std::fabs(v) < 0.15f) v = v < 0 ? v - 0.2f : v + 0.2f;
  }
  CheckGradients({a}, [&] { return Sum(Relu(a)); });
  CheckGradients({a}, [&] { return Sum(LeakyRelu(a, 0.2f)); });
  CheckGradients({a}, [&] { return Sum(Sigmoid(a)); });
  CheckGradients({a}, [&] { return Sum(Tanh(a)); });
  CheckGradients({a}, [&] { return Sum(Square(a)); });
}

TEST(GradCheckTest, ExpLog) {
  auto a = RandomParam(2, 3, 12, 0.3f);
  CheckGradients({a}, [&] { return Sum(Exp(a)); });
  auto b = RandomParam(2, 3, 13);
  for (auto& v : b->data()) v = 1.0f + std::fabs(v);
  CheckGradients({b}, [&] { return Sum(LogSafe(b)); });
}

TEST(GradCheckTest, RowSoftmax) {
  auto a = RandomParam(3, 4, 14);
  auto probe = RandomParam(3, 4, 15);
  probe->set_requires_grad(false);
  CheckGradients({a}, [&] { return Sum(Mul(RowSoftmax(a), probe)); });
}

TEST(GradCheckTest, RowLogSoftmax) {
  auto a = RandomParam(3, 4, 16);
  auto probe = RandomParam(3, 4, 17);
  probe->set_requires_grad(false);
  CheckGradients({a}, [&] { return Sum(Mul(RowLogSoftmax(a), probe)); });
}

TEST(GradCheckTest, SegmentSoftmax) {
  auto scores = RandomParam(6, 1, 18);
  std::vector<int64_t> seg = {0, 0, 1, 1, 1, 2};
  auto probe = RandomParam(6, 1, 19);
  probe->set_requires_grad(false);
  CheckGradients({scores}, [&] {
    return Sum(Mul(SegmentSoftmax(scores, seg, 3), probe));
  });
}

TEST(GradCheckTest, Reductions) {
  auto a = RandomParam(3, 4, 20);
  CheckGradients({a}, [&] { return Mean(a); });
  CheckGradients({a}, [&] { return Sum(Square(RowSum(a))); });
}

TEST(GradCheckTest, SegmentSum) {
  auto v = RandomParam(5, 3, 21);
  std::vector<int64_t> seg = {1, 0, 1, 2, 0};
  CheckGradients({v}, [&] { return Sum(Square(SegmentSum(v, seg, 3))); });
}

TEST(GradCheckTest, ConcatSliceGather) {
  auto a = RandomParam(3, 2, 22);
  auto b = RandomParam(3, 3, 23);
  CheckGradients({a, b}, [&] {
    auto c = ConcatCols({a, b});
    auto s = SliceCols(c, 1, 3);
    auto g = GatherRows(s, {2, 0, 2, 1});
    return Sum(Square(g));
  });
}

TEST(GradCheckTest, ConcatRows) {
  auto a = RandomParam(2, 3, 24);
  auto b = RandomParam(3, 3, 25);
  CheckGradients({a, b}, [&] { return Sum(Square(ConcatRows({a, b}))); });
}

TEST(GradCheckTest, TakeDiag) {
  auto a = RandomParam(4, 4, 26);
  CheckGradients({a}, [&] { return Sum(Square(TakeDiag(a))); });
}

TEST(GradCheckTest, RowL2Normalize) {
  auto a = RandomParam(3, 4, 27);
  for (auto& v : a->data()) v += (v >= 0 ? 0.5f : -0.5f);
  auto probe = RandomParam(3, 4, 28);
  probe->set_requires_grad(false);
  CheckGradients({a}, [&] { return Sum(Mul(RowL2Normalize(a), probe)); });
}

TEST(GradCheckTest, LayerNorm) {
  auto x = RandomParam(3, 5, 29);
  auto gamma = RandomParam(1, 5, 30);
  auto beta = RandomParam(1, 5, 31);
  auto probe = RandomParam(3, 5, 32);
  probe->set_requires_grad(false);
  CheckGradients({x, gamma, beta}, [&] {
    return Sum(Mul(LayerNorm(x, gamma, beta), probe));
  });
}

TEST(GradCheckTest, SpMM) {
  auto m = CsrMatrix::FromTriplets(
      4, 3, {{0, 0, 1.0f}, {0, 2, -2.0f}, {1, 1, 3.0f}, {2, 0, 0.5f},
             {3, 2, 1.5f}});
  auto x = RandomParam(3, 2, 33);
  CheckGradients({x}, [&] { return Sum(Square(SpMM(m, x))); });
}

TEST(GradCheckTest, DropoutMaskIsConsistentInBackward) {
  // Dropout draws a fresh mask per forward, so finite differences cannot be
  // used; instead verify the analytic gradient equals the applied mask.
  common::Rng rng(42);
  auto a = RandomParam(4, 4, 34);
  auto d = Dropout(a, 0.5f, rng, /*training=*/true);
  auto loss = Sum(d);
  loss->Backward();
  for (int64_t i = 0; i < a->size(); ++i) {
    const float mask = a->data()[i] != 0.0f ? d->data()[i] / a->data()[i]
                                            : a->grad()[i];
    EXPECT_NEAR(a->grad()[i], mask, 1e-4);
  }
}

// A composition resembling the contrastive task loss.
TEST(GradCheckTest, InfoNceLikeComposition) {
  auto z1 = RandomParam(4, 3, 35);
  auto z2 = RandomParam(4, 3, 36);
  CheckGradients({z1, z2}, [&] {
    auto s = Scale(MatMul(RowL2Normalize(z1), Transpose(RowL2Normalize(z2))),
                   5.0f);
    return Neg(Mean(TakeDiag(RowLogSoftmax(s))));
  });
}

// A composition resembling the Dirichlet energy node.
TEST(GradCheckTest, DirichletEnergyComposition) {
  auto m = CsrMatrix::FromTriplets(
      3, 3, {{0, 1, 0.5f}, {1, 0, 0.5f}, {1, 2, 0.5f}, {2, 1, 0.5f},
             {0, 0, 0.5f}, {1, 1, 0.3f}, {2, 2, 0.5f}});
  auto x = RandomParam(3, 4, 37);
  CheckGradients({x}, [&] {
    return Sub(SumSquares(x), Sum(Mul(x, SpMM(m, x))));
  });
}


TEST(GradCheckTest, AbsClipMaxMinRowMaxColMean) {
  auto a = RandomParam(3, 4, 50);
  auto b = RandomParam(3, 4, 51);
  // keep entries away from the non-smooth points
  for (auto* t : {a.get(), b.get()}) {
    for (auto& v : t->data()) {
      if (std::fabs(v) < 0.1f) v += 0.3f;
    }
  }
  CheckGradients({a}, [&] { return Sum(Abs(a)); });
  CheckGradients({a}, [&] { return Sum(ClipByValue(a, -0.8f, 0.8f)); });
  CheckGradients({a, b}, [&] { return Sum(MaxElementwise(a, b)); });
  CheckGradients({a, b}, [&] { return Sum(MinElementwise(a, b)); });
  CheckGradients({a}, [&] { return Sum(Square(RowMax(a))); });
  CheckGradients({a}, [&] { return Sum(Square(ColMean(a))); });
}

// Re-run the heaviest compositions with the backward pass actually split
// across threads: 4 workers and a forced grain of 1 chunk these tiny shapes
// into multiple pieces, so the parallelized backwards (matmul, LayerNorm,
// L2-normalize, softmax, scatter/column reductions) are gradient-checked on
// the same multi-chunk code path production uses on large tensors.
TEST(GradCheckTest, ParallelizedBackwardsStillPass) {
  common::ThreadPool::SetGlobalThreadCount(4);
  kernels::SetForcedGrainForTesting(1);

  auto a = RandomParam(3, 4, 60);
  auto b = RandomParam(4, 2, 61);
  CheckGradients({a, b}, [&] { return Sum(MatMul(a, b)); });

  auto x = RandomParam(3, 5, 62);
  auto gamma = RandomParam(1, 5, 63);
  auto beta = RandomParam(1, 5, 64);
  auto probe = RandomParam(3, 5, 65);
  probe->set_requires_grad(false);
  CheckGradients({x, gamma, beta}, [&] {
    return Sum(Mul(LayerNorm(x, gamma, beta), probe));
  });

  auto z1 = RandomParam(4, 3, 66);
  auto z2 = RandomParam(4, 3, 67);
  CheckGradients({z1, z2}, [&] {
    auto s = Scale(MatMul(RowL2Normalize(z1), Transpose(RowL2Normalize(z2))),
                   5.0f);
    return Neg(Mean(TakeDiag(RowLogSoftmax(s))));
  });

  auto v = RandomParam(5, 3, 68);
  std::vector<int64_t> seg = {1, 0, 1, 2, 0};
  CheckGradients({v}, [&] { return Sum(Square(SegmentSum(v, seg, 3))); });

  auto row = RandomParam(1, 4, 69);
  auto g = RandomParam(3, 4, 70);
  CheckGradients({g, row}, [&] {
    return Sum(Square(MulRowVector(AddRowVector(g, row), row)));
  });

  kernels::SetForcedGrainForTesting(0);
  common::ThreadPool::SetGlobalThreadCount(0);
}

// Parameterized sweep: MatMul gradients across a range of shapes.
class MatMulShapeGradTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulShapeGradTest, Gradients) {
  auto [m, k, n] = GetParam();
  auto a = RandomParam(m, k, 100 + m * 7 + k, 0.7f);
  auto b = RandomParam(k, n, 200 + k * 5 + n, 0.7f);
  CheckGradients({a, b}, [&] { return Sum(Square(MatMul(a, b))); });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulShapeGradTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 5, 1),
                      std::make_tuple(4, 1, 4), std::make_tuple(2, 3, 5),
                      std::make_tuple(5, 4, 3), std::make_tuple(3, 3, 3)));

// Parameterized sweep: softmax gradients across widths.
class SoftmaxWidthGradTest : public ::testing::TestWithParam<int> {};

TEST_P(SoftmaxWidthGradTest, Gradients) {
  const int width = GetParam();
  auto a = RandomParam(2, width, 300 + width);
  auto probe = RandomParam(2, width, 400 + width);
  probe->set_requires_grad(false);
  CheckGradients({a}, [&] { return Sum(Mul(RowSoftmax(a), probe)); });
}

INSTANTIATE_TEST_SUITE_P(Widths, SoftmaxWidthGradTest,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

TEST(GradCheckTest, ScaleAddScalarNeg) {
  auto a = RandomParam(3, 4, 60);
  CheckGradients({a}, [&] { return Sum(Scale(a, 2.5f)); });
  CheckGradients({a}, [&] { return Sum(Scale(a, -0.75f)); });
  CheckGradients({a}, [&] { return Sum(Square(AddScalar(a, 1.25f))); });
  CheckGradients({a}, [&] { return Sum(Square(Neg(a))); });
}

TEST(GradCheckTest, RowDot) {
  auto a = RandomParam(4, 3, 61);
  auto b = RandomParam(4, 3, 62);
  CheckGradients({a, b}, [&] { return Sum(Square(RowDot(a, b))); });
}

TEST(GradCheckTest, SumSquares) {
  auto a = RandomParam(3, 5, 63, 0.7f);
  CheckGradients({a}, [&] { return SumSquares(a); });
}

TEST(GradCheckTest, SumSquaresComposesLikeDirichletEnergy) {
  // The shape MmslPenalty builds: SumSquares(x) − Sum(x ⊙ f(x)).
  auto a = RandomParam(3, 3, 64, 0.6f);
  CheckGradients(
      {a}, [&] { return Sub(SumSquares(a), Sum(Mul(a, Tanh(a)))); });
}

// Property sweep: the cheap elementwise/reduction ops across randomized
// shapes, seeded per shape so failures reproduce exactly.
class ElementwiseShapeGradTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ElementwiseShapeGradTest, Gradients) {
  auto [r, c] = GetParam();
  const uint64_t seed = 500 + static_cast<uint64_t>(r * 13 + c);
  auto a = RandomParam(r, c, seed, 0.8f);
  auto b = RandomParam(r, c, seed + 1, 0.8f);
  CheckGradients({a}, [&] { return Sum(Scale(a, 1.5f)); });
  CheckGradients({a}, [&] { return Sum(Square(AddScalar(a, -0.5f))); });
  CheckGradients({a}, [&] { return Sum(Square(Neg(a))); });
  CheckGradients({a, b}, [&] { return Sum(Square(RowDot(a, b))); });
  CheckGradients({a}, [&] { return SumSquares(a); });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ElementwiseShapeGradTest,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(1, 7),
                      std::make_tuple(6, 1), std::make_tuple(3, 4),
                      std::make_tuple(5, 5)));

}  // namespace
}  // namespace desalign::tensor
