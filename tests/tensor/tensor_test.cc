#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace desalign::tensor {
namespace {

TEST(TensorTest, CreateZeroFilled) {
  auto t = Tensor::Create(3, 4);
  EXPECT_EQ(t->rows(), 3);
  EXPECT_EQ(t->cols(), 4);
  EXPECT_EQ(t->size(), 12);
  for (float v : t->data()) EXPECT_EQ(v, 0.0f);
}

TEST(TensorTest, FromDataAdoptsValues) {
  auto t = Tensor::FromData(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(t->At(0, 0), 1.0f);
  EXPECT_EQ(t->At(0, 1), 2.0f);
  EXPECT_EQ(t->At(1, 0), 3.0f);
  EXPECT_EQ(t->At(1, 1), 4.0f);
}

TEST(TensorTest, FullAndScalar) {
  auto t = Tensor::Full(2, 3, 7.5f);
  for (float v : t->data()) EXPECT_EQ(v, 7.5f);
  auto s = Tensor::Scalar(-2.0f);
  EXPECT_EQ(s->ScalarValue(), -2.0f);
}

TEST(TensorTest, GradLazilyAllocated) {
  auto t = Tensor::Create(2, 2, /*requires_grad=*/true);
  EXPECT_FALSE(t->has_grad());
  t->grad();
  EXPECT_TRUE(t->has_grad());
  EXPECT_EQ(t->grad().size(), 4u);
}

TEST(TensorTest, DetachCopiesDataWithoutGraph) {
  auto a = Tensor::FromData(1, 2, {1, 2}, /*requires_grad=*/true);
  auto b = Add(a, a);
  auto d = b->Detach();
  EXPECT_EQ(d->At(0, 0), 2.0f);
  EXPECT_FALSE(d->requires_grad());
  EXPECT_TRUE(d->parents().empty());
}

TEST(TensorTest, BackwardThroughChain) {
  auto x = Tensor::FromData(1, 1, {3.0f}, /*requires_grad=*/true);
  // y = (2x)^2 -> dy/dx = 8x = 24
  auto y = Square(Scale(x, 2.0f));
  y->Backward();
  EXPECT_FLOAT_EQ(x->grad()[0], 24.0f);
}

TEST(TensorTest, BackwardAccumulatesOverSharedSubexpression) {
  auto x = Tensor::FromData(1, 1, {2.0f}, /*requires_grad=*/true);
  // y = x*x + x  (x used twice through different paths)
  auto y = Add(Mul(x, x), x);
  y->Backward();
  EXPECT_FLOAT_EQ(x->grad()[0], 2.0f * 2.0f + 1.0f);
}

TEST(TensorTest, BackwardDiamondGraph) {
  auto x = Tensor::FromData(1, 1, {1.5f}, /*requires_grad=*/true);
  auto a = Scale(x, 2.0f);
  auto b = Scale(x, 3.0f);
  auto y = Mul(a, b);  // y = 6x^2, dy/dx = 12x = 18
  y->Backward();
  EXPECT_FLOAT_EQ(x->grad()[0], 18.0f);
}

TEST(TensorTest, ZeroGradClears) {
  auto x = Tensor::FromData(1, 1, {1.0f}, /*requires_grad=*/true);
  auto y = Scale(x, 5.0f);
  y->Backward();
  EXPECT_FLOAT_EQ(x->grad()[0], 5.0f);
  x->ZeroGrad();
  EXPECT_FLOAT_EQ(x->grad()[0], 0.0f);
}

TEST(TensorTest, NoGradGuardSuppressesGraph) {
  auto x = Tensor::FromData(1, 1, {1.0f}, /*requires_grad=*/true);
  TensorPtr y;
  {
    NoGradGuard guard;
    EXPECT_FALSE(GradEnabled());
    y = Scale(x, 2.0f);
  }
  EXPECT_TRUE(GradEnabled());
  EXPECT_TRUE(y->parents().empty());
  EXPECT_FALSE(y->NeedsGrad());
}

TEST(TensorTest, NoGradGuardNests) {
  NoGradGuard outer;
  {
    NoGradGuard inner;
    EXPECT_FALSE(GradEnabled());
  }
  EXPECT_FALSE(GradEnabled());
}

TEST(TensorTest, FrobeniusNorm) {
  auto t = Tensor::FromData(1, 2, {3, 4});
  EXPECT_FLOAT_EQ(t->FrobeniusNorm(), 5.0f);
}

TEST(TensorTest, ToStringIncludesShape) {
  auto t = Tensor::Create(3, 7);
  EXPECT_NE(t->ToString().find("3x7"), std::string::npos);
}

TEST(TensorTest, OpsOverConstantsBuildNoGraph) {
  auto a = Tensor::FromData(1, 1, {1.0f});
  auto b = Tensor::FromData(1, 1, {2.0f});
  auto c = Add(a, b);
  EXPECT_TRUE(c->parents().empty());
}

}  // namespace
}  // namespace desalign::tensor
