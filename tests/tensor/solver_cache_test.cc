// Find-db (tuning cache) robustness: the cache file is advisory — any
// structural defect (truncation, garbage, bit flips, version skew) must be
// rejected with a named error, counted on tensor.solver.cache_errors, and
// leave dispatch running on the default solver. A bad tuning file may make
// the process slower; it must never make it abort or select garbage.

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <unistd.h>

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "tensor/kernels/solver/find_db.h"
#include "tensor/kernels/solver/solver.h"

namespace desalign::tensor::kernels::solver {
namespace {

class SolverCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("desalign_solver_cache_test_" + std::to_string(::getpid()) +
              ".bin"))
                .string();
    std::filesystem::remove(path_);
  }

  void TearDown() override {
    SolverRegistry::Global().ClearCache();
    std::filesystem::remove(path_);
  }

  static std::string ReadFile(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  static void WriteFile(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  static FindDb MakeDb() {
    FindDb db;
    db.tuned_at_unix = 1754600000;
    const GemmOp ops[] = {GemmOp::kMatMul, GemmOp::kMatMulGradA,
                          GemmOp::kMatMulGradB};
    const int64_t sizes[] = {64, 512};
    for (const GemmOp op : ops) {
      for (const int64_t s : sizes) {
        FindDbRecord rec;
        rec.key = ProblemKey::FromProblem(
            GemmProblem{op, s, s, s, IsaLevel::kScalar, 1});
        rec.solver_id = "gemm.blocked8x8";
        rec.best_ns_per_elem = 0.05;
        rec.default_ns_per_elem = 0.12;
        db.Upsert(rec);
      }
    }
    return db;
  }

  static int64_t CacheErrors() {
    return obs::MetricsRegistry::Global()
        .GetCounter("tensor.solver.cache_errors")
        .value();
  }

  std::string path_;
};

TEST_F(SolverCacheTest, SerializeRoundTripsExactly) {
  const FindDb db = MakeDb();
  auto loaded = FindDb::Deserialize(db.Serialize());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().tuned_at_unix, db.tuned_at_unix);
  ASSERT_EQ(loaded.value().records.size(), db.records.size());
  for (size_t i = 0; i < db.records.size(); ++i) {
    EXPECT_TRUE(loaded.value().records[i].key == db.records[i].key);
    EXPECT_EQ(loaded.value().records[i].solver_id, db.records[i].solver_id);
    EXPECT_EQ(loaded.value().records[i].best_ns_per_elem,
              db.records[i].best_ns_per_elem);
    EXPECT_EQ(loaded.value().records[i].default_ns_per_elem,
              db.records[i].default_ns_per_elem);
  }
  // And through the filesystem.
  ASSERT_TRUE(db.Save(path_).ok());
  auto from_disk = FindDb::Load(path_);
  ASSERT_TRUE(from_disk.ok());
  EXPECT_EQ(from_disk.value().Serialize(), db.Serialize());
}

TEST_F(SolverCacheTest, UpsertReplacesAndFindMissesCleanly) {
  FindDb db = MakeDb();
  const size_t count = db.records.size();
  FindDbRecord rec = db.records.front();
  rec.solver_id = "gemm.rowaxpy";
  db.Upsert(rec);
  EXPECT_EQ(db.records.size(), count);  // replaced, not duplicated
  const FindDbRecord* found = db.Find(rec.key);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->solver_id, "gemm.rowaxpy");
  ProblemKey missing;
  missing.op = 2;
  missing.bm = 61;
  missing.bk = 62;
  missing.bn = 63;
  EXPECT_EQ(db.Find(missing), nullptr);
}

struct CorruptCase {
  const char* name;
  std::function<void(std::string&)> mutate;
  const char* expect_substring;
};

TEST_F(SolverCacheTest, TableDrivenCorruptionsRejectedWithNamedErrors) {
  ASSERT_TRUE(MakeDb().Save(path_).ok());
  const std::string pristine = ReadFile(path_);
  ASSERT_GT(pristine.size(), 24u);

  const CorruptCase cases[] = {
      {"empty file", [](std::string& b) { b.clear(); },
       "too short to be valid"},
      {"below minimum size", [](std::string& b) { b.resize(10); },
       "too short to be valid"},
      {"bad magic", [](std::string& b) { b[0] = 'X'; }, "bad magic"},
      {"all garbage",
       [](std::string& b) {
         for (auto& c : b) c = '\x5a';
       },
       "bad magic"},
      // The version field is checked before the checksum so skew reports as
      // skew, not as a CRC failure over bytes we cannot interpret.
      {"version skew", [](std::string& b) { b[4] = 9; },
       "version skew: file v9"},
      {"flipped record byte", [](std::string& b) { b[25] ^= 0x10; },
       "checksum mismatch"},
      {"flipped crc byte",
       [](std::string& b) { b[b.size() - 2] ^= 0x01; },
       "checksum mismatch"},
      {"truncated final record",
       [](std::string& b) { b.resize(b.size() - 9); },
       "checksum mismatch"},
      {"trailing garbage", [](std::string& b) { b += "XYZW"; },
       "checksum mismatch"},
  };

  for (const auto& c : cases) {
    std::string corrupt = pristine;
    c.mutate(corrupt);
    auto loaded = FindDb::Deserialize(corrupt);
    ASSERT_FALSE(loaded.ok()) << c.name;
    EXPECT_EQ(loaded.status().code(), common::StatusCode::kIoError) << c.name;
    EXPECT_NE(loaded.status().ToString().find(c.expect_substring),
              std::string::npos)
        << c.name << ": got " << loaded.status().ToString();

    // Each defect also flows through the registry: ReloadCache fails,
    // counts a cache error, and Select falls back to the default solver.
    WriteFile(path_, corrupt);
    auto& registry = SolverRegistry::Global();
    const int64_t errors0 = CacheErrors();
    EXPECT_FALSE(registry.ReloadCache(path_).ok()) << c.name;
    EXPECT_EQ(CacheErrors(), errors0 + 1) << c.name;
    EXPECT_EQ(registry.CacheSize(), 0) << c.name;
    EXPECT_EQ(registry.Select(GemmProblem{GemmOp::kMatMul, 64, 64, 64,
                                          IsaLevel::kScalar, 1}),
              registry.DefaultSolver())
        << c.name;
  }

  // The pristine bytes still load — the harness itself is sound.
  WriteFile(path_, pristine);
  EXPECT_TRUE(SolverRegistry::Global().ReloadCache(path_).ok());
  EXPECT_GT(SolverRegistry::Global().CacheSize(), 0);
}

TEST_F(SolverCacheTest, TruncationRejectedAtEveryLength) {
  ASSERT_TRUE(MakeDb().Save(path_).ok());
  const std::string pristine = ReadFile(path_);
  for (size_t keep = 0; keep < pristine.size(); ++keep) {
    EXPECT_FALSE(FindDb::Deserialize(pristine.substr(0, keep)).ok())
        << "kept " << keep;
  }
}

TEST_F(SolverCacheTest, SingleBitFlipsCaughtEverywhere) {
  ASSERT_TRUE(MakeDb().Save(path_).ok());
  const std::string pristine = ReadFile(path_);
  for (size_t off = 0; off < pristine.size(); ++off) {
    std::string corrupt = pristine;
    corrupt[off] ^= 1;
    EXPECT_FALSE(FindDb::Deserialize(corrupt).ok())
        << "bit flip at offset " << off;
  }
}

TEST_F(SolverCacheTest, VersionSkewIsNotReportedAsChecksumFailure) {
  // A v2 file from a future build: bump the version and reseal the CRC so
  // only the version check can object. This is the forward-compat path —
  // the message names both versions so the fix (re-run tune) is obvious.
  std::string bytes = MakeDb().Serialize();
  bytes[4] = 2;
  const uint32_t crc = common::Crc32(bytes.data(), bytes.size() - 4);
  std::memcpy(bytes.data() + bytes.size() - 4, &crc, sizeof(crc));
  auto loaded = FindDb::Deserialize(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("version skew: file v2"),
            std::string::npos)
      << loaded.status().ToString();
  EXPECT_NE(loaded.status().ToString().find("reads v1"), std::string::npos);
}

TEST_F(SolverCacheTest, FindDbPathHonorsEnvOverride) {
  ::setenv("DESALIGN_TUNE_CACHE", "/tmp/desalign_override.bin", 1);
  EXPECT_EQ(FindDbPath(), "/tmp/desalign_override.bin");
  ::unsetenv("DESALIGN_TUNE_CACHE");
  // Without the override the path lands under a cache directory.
  EXPECT_NE(FindDbPath().find("gemm_find_db.bin"), std::string::npos);
}

TEST_F(SolverCacheTest, ReloadAfterGoodThenBadKeepsServingDefaults) {
  auto& registry = SolverRegistry::Global();
  ASSERT_TRUE(MakeDb().Save(path_).ok());
  ASSERT_TRUE(registry.ReloadCache(path_).ok());
  EXPECT_STREQ(registry.Select(GemmProblem{GemmOp::kMatMul, 64, 64, 64,
                                           IsaLevel::kScalar, 1})
                   ->id(),
               "gemm.blocked8x8");

  // The file rots in place; a reload drops the stale cache rather than
  // keeping half-trusted records around.
  WriteFile(path_, "DSFDgarbage");
  EXPECT_FALSE(registry.ReloadCache(path_).ok());
  EXPECT_EQ(registry.CacheSize(), 0);
  EXPECT_EQ(registry.Select(GemmProblem{GemmOp::kMatMul, 64, 64, 64,
                                        IsaLevel::kScalar, 1}),
            registry.DefaultSolver());
}

}  // namespace
}  // namespace desalign::tensor::kernels::solver
