// Solver-registry suite (ctest -L solver): every registered GEMM solver
// must be bit-identical to the serial scalar reference
// (kernels/reference.cc) across edge shapes x ISA x thread counts, and
// runtime selection must be pure cache replay — deterministic across
// environments, falling back to the fixed default solver on any miss,
// never timing anything online.

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "tensor/kernels/dispatch.h"
#include "tensor/kernels/gemm.h"
#include "tensor/kernels/reference.h"
#include "tensor/kernels/solver/find_db.h"
#include "tensor/kernels/solver/solver.h"

namespace desalign::tensor::kernels::solver {
namespace {

std::vector<float> RandomVec(common::Rng& rng, int64_t n, float lo = -2.0f,
                             float hi = 2.0f) {
  std::vector<float> v(static_cast<size_t>(n));
  for (auto& x : v) x = rng.UniformF(lo, hi);
  return v;
}

struct Config {
  IsaLevel isa;
  int threads;
};

std::vector<Config> AllConfigs() {
  std::vector<Config> configs = {{IsaLevel::kScalar, 1},
                                 {IsaLevel::kScalar, 4}};
  if (CpuSupportsAvx2()) {
    configs.push_back({IsaLevel::kAvx2, 1});
    configs.push_back({IsaLevel::kAvx2, 4});
  }
  return configs;
}

int64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name).value();
}

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("desalign_solver_test_") + name + "_" +
           std::to_string(::getpid()) + ".bin"))
      .string();
}

// Runs every registered solver on (op, m, k, n) under every ISA x
// partitioning configuration and memcmps the output bytes against the
// reference loops. Output buffers are seeded nonzero (including -0.0f) so
// the grads' accumulate-into-out semantics and the zero-skip subtleties
// are actually exercised.
void ExpectAllSolversBitExact(GemmOp op, int64_t m, int64_t k, int64_t n,
                              common::Rng& rng) {
  const int64_t in1_len = op == GemmOp::kMatMul ? m * k : m * n;
  const int64_t in2_len = op == GemmOp::kMatMulGradB ? m * k : k * n;
  const int64_t out_len = op == GemmOp::kMatMul
                              ? m * n
                              : (op == GemmOp::kMatMulGradA ? m * k : k * n);
  auto in1 = RandomVec(rng, in1_len);
  auto in2 = RandomVec(rng, in2_len);
  // Plant exact zeros and negative zeros in the "a" operand so the
  // reference's zero-skip must be reproduced term-for-term, and -0.0f in
  // the output so a spurious +0.0 add would flip bytes.
  std::vector<float>& a_operand = op == GemmOp::kMatMulGradB ? in2 : in1;
  for (size_t i = 0; i < a_operand.size(); i += 5) a_operand[i] = 0.0f;
  for (size_t i = 3; i < a_operand.size(); i += 11) a_operand[i] = -0.0f;
  std::vector<float> base = RandomVec(rng, out_len);
  for (size_t i = 1; i < base.size(); i += 7) base[i] = -0.0f;

  std::vector<float> expected = base;
  switch (op) {
    case GemmOp::kMatMul:
      reference::MatMul(in1.data(), in2.data(), expected.data(), m, k, n);
      break;
    case GemmOp::kMatMulGradA:
      reference::MatMulGradA(in1.data(), in2.data(), expected.data(), m, k,
                             n);
      break;
    case GemmOp::kMatMulGradB:
      reference::MatMulGradB(in1.data(), in2.data(), expected.data(), m, k,
                             n);
      break;
  }

  for (const GemmSolver* s : SolverRegistry::Global().Solvers()) {
    for (const Config& config : AllConfigs()) {
      GemmProblem p;
      p.op = op;
      p.m = m;
      p.k = k;
      p.n = n;
      p.isa = config.isa;
      p.threads = config.threads;
      if (!s->IsApplicable(p)) continue;
      common::ThreadPool::SetGlobalThreadCount(config.threads);
      SetForcedGrainForTesting(config.threads > 1 ? 1 : 0);
      SetIsaOverride(config.isa);
      std::vector<float> got = base;
      s->Run(p, in1.data(), in2.data(), got.data());
      SetIsaOverride(IsaLevel::kScalar, /*has_override=*/false);
      SetForcedGrainForTesting(0);
      common::ThreadPool::SetGlobalThreadCount(0);
      EXPECT_TRUE(got.empty() ||
                  std::memcmp(got.data(), expected.data(),
                              got.size() * sizeof(float)) == 0)
          << s->id() << " " << GemmOpName(op) << " m=" << m << " k=" << k
          << " n=" << n << " " << IsaName(config.isa) << " @"
          << config.threads << " threads";
    }
  }
}

TEST(SolverRegistryTest, RegistrationOrderAndDefault) {
  auto& registry = SolverRegistry::Global();
  ASSERT_GE(registry.Solvers().size(), 2u);
  EXPECT_STREQ(registry.DefaultSolver()->id(), "gemm.rowaxpy");
  EXPECT_EQ(registry.Solvers().front(), registry.DefaultSolver());
  EXPECT_NE(registry.FindById("gemm.blocked8x8"), nullptr);
  EXPECT_EQ(registry.FindById("gemm.nonexistent"), nullptr);
}

TEST(SolverRegistryTest, ApplicableIsEstimateOrdered) {
  auto& registry = SolverRegistry::Global();
  // Large cube: the blocked solver's prior is cheaper, so it sorts first.
  const auto large = registry.Applicable(
      GemmProblem{GemmOp::kMatMul, 512, 512, 512, IsaLevel::kScalar, 1});
  ASSERT_GE(large.size(), 2u);
  EXPECT_STREQ(large.front()->id(), "gemm.blocked8x8");
  // Tiny cube: packing overhead dominates and rowaxpy's prior wins.
  const auto tiny = registry.Applicable(
      GemmProblem{GemmOp::kMatMul, 4, 4, 4, IsaLevel::kScalar, 1});
  ASSERT_GE(tiny.size(), 2u);
  EXPECT_STREQ(tiny.front()->id(), "gemm.rowaxpy");
  for (size_t i = 1; i < large.size(); ++i) {
    EXPECT_LE(large[i - 1]->Estimate(
                  GemmProblem{GemmOp::kMatMul, 512, 512, 512,
                              IsaLevel::kScalar, 1}),
              large[i]->Estimate(GemmProblem{GemmOp::kMatMul, 512, 512, 512,
                                             IsaLevel::kScalar, 1}));
  }
}

TEST(SolverRegistryTest, ShapeBucketsAreCeilLog2) {
  EXPECT_EQ(ProblemKey::Bucket(0), 0);
  EXPECT_EQ(ProblemKey::Bucket(1), 0);
  EXPECT_EQ(ProblemKey::Bucket(2), 1);
  EXPECT_EQ(ProblemKey::Bucket(8), 3);
  EXPECT_EQ(ProblemKey::Bucket(9), 4);
  EXPECT_EQ(ProblemKey::Bucket(256), 8);
  EXPECT_EQ(ProblemKey::Bucket(257), 9);
  EXPECT_EQ(ProblemKey::Bucket(512), 9);
}

TEST(SolverRegistryTest, EmptyCacheFallsBackToDefaultAndCounts) {
  auto& registry = SolverRegistry::Global();
  registry.ClearCache();
  const int64_t miss0 = CounterValue("tensor.solver.cache_miss");
  const int64_t fallback0 = CounterValue("tensor.solver.fallback");
  const auto* s = registry.Select(
      GemmProblem::Current(GemmOp::kMatMul, 64, 64, 64));
  EXPECT_EQ(s, registry.DefaultSolver());
  EXPECT_EQ(CounterValue("tensor.solver.cache_miss"), miss0 + 1);
  EXPECT_EQ(CounterValue("tensor.solver.fallback"), fallback0 + 1);
}

TEST(SolverRegistryTest, SelectReplaysCacheAcrossThreadsAndIsa) {
  auto& registry = SolverRegistry::Global();
  const std::string path = TempPath("replay");

  FindDb db;
  FindDbRecord rec;
  rec.key = ProblemKey::FromProblem(
      GemmProblem{GemmOp::kMatMul, 64, 64, 64, IsaLevel::kScalar, 1});
  rec.solver_id = "gemm.blocked8x8";
  db.Upsert(rec);
  ASSERT_TRUE(db.Save(path).ok());
  ASSERT_TRUE(registry.ReloadCache(path).ok());

  const int64_t hit0 = CounterValue("tensor.solver.cache_hit");
  // Selection must be a pure function of (op, shape): identical for every
  // ISA level and thread count — the determinism contract for replay.
  for (const IsaLevel isa : {IsaLevel::kScalar, IsaLevel::kAvx2}) {
    for (const int threads : {1, 2, 8}) {
      GemmProblem p{GemmOp::kMatMul, 64, 64, 64, isa, threads};
      EXPECT_STREQ(registry.Select(p)->id(), "gemm.blocked8x8")
          << IsaName(isa) << " @" << threads;
    }
  }
  EXPECT_EQ(CounterValue("tensor.solver.cache_hit"), hit0 + 6);

  // A different bucket (and a different op) miss and fall back.
  EXPECT_EQ(registry.Select(
                GemmProblem{GemmOp::kMatMul, 300, 300, 300,
                            IsaLevel::kScalar, 1}),
            registry.DefaultSolver());
  EXPECT_EQ(registry.Select(
                GemmProblem{GemmOp::kMatMulGradA, 64, 64, 64,
                            IsaLevel::kScalar, 1}),
            registry.DefaultSolver());

  registry.ClearCache();
  std::filesystem::remove(path);
}

TEST(SolverRegistryTest, UnknownCachedSolverIdFallsBack) {
  auto& registry = SolverRegistry::Global();
  const std::string path = TempPath("unknown_id");

  FindDb db;
  FindDbRecord rec;
  rec.key = ProblemKey::FromProblem(
      GemmProblem{GemmOp::kMatMul, 64, 64, 64, IsaLevel::kScalar, 1});
  rec.solver_id = "gemm.from_a_newer_build";
  db.Upsert(rec);
  ASSERT_TRUE(db.Save(path).ok());
  ASSERT_TRUE(registry.ReloadCache(path).ok());

  const int64_t fallback0 = CounterValue("tensor.solver.fallback");
  EXPECT_EQ(registry.Select(
                GemmProblem{GemmOp::kMatMul, 64, 64, 64, IsaLevel::kScalar,
                            1}),
            registry.DefaultSolver());
  EXPECT_EQ(CounterValue("tensor.solver.fallback"), fallback0 + 1);

  registry.ClearCache();
  std::filesystem::remove(path);
}

TEST(SolverRegistryTest, PublicKernelsDispatchBitExactWithTunedCache) {
  // End-to-end through kernels::MatMul: with a cache that selects the
  // blocked solver, the public entry point must still match the reference
  // bit-for-bit (the whole point: selection is a speed knob only).
  auto& registry = SolverRegistry::Global();
  const std::string path = TempPath("dispatch");
  const int64_t m = 65, k = 33, n = 40;

  FindDb db;
  for (const GemmOp op :
       {GemmOp::kMatMul, GemmOp::kMatMulGradA, GemmOp::kMatMulGradB}) {
    FindDbRecord rec;
    rec.key = ProblemKey::FromProblem(
        GemmProblem{op, m, k, n, IsaLevel::kScalar, 1});
    rec.solver_id = "gemm.blocked8x8";
    db.Upsert(rec);
  }
  ASSERT_TRUE(db.Save(path).ok());
  ASSERT_TRUE(registry.ReloadCache(path).ok());

  common::Rng rng(7);
  const auto a = RandomVec(rng, m * k);
  const auto b = RandomVec(rng, k * n);
  std::vector<float> got(static_cast<size_t>(m * n));
  std::vector<float> expected(static_cast<size_t>(m * n));
  const int64_t hit0 = CounterValue("tensor.solver.cache_hit");
  MatMul(a.data(), b.data(), got.data(), m, k, n);
  EXPECT_EQ(CounterValue("tensor.solver.cache_hit"), hit0 + 1);
  reference::MatMul(a.data(), b.data(), expected.data(), m, k, n);
  EXPECT_EQ(std::memcmp(got.data(), expected.data(),
                        got.size() * sizeof(float)),
            0);

  registry.ClearCache();
  std::filesystem::remove(path);
}

TEST(SolverBitExactTest, EdgeShapeGridAllOpsAllSolvers) {
  // m/k/n each drawn from the vector-width edge set: 1 and 7 (below one
  // lane group), 8 (exactly one 8-wide tile), 63/64/65 (straddling the
  // 8x8 micro-tile grid), 129 (remainder after 16 full lanes).
  const int64_t kEdge[] = {1, 7, 8, 63, 64, 65, 129};
  common::Rng rng(20260808);
  for (const int64_t m : kEdge) {
    for (const int64_t k : kEdge) {
      for (const int64_t n : kEdge) {
        for (const GemmOp op : {GemmOp::kMatMul, GemmOp::kMatMulGradA,
                                GemmOp::kMatMulGradB}) {
          ExpectAllSolversBitExact(op, m, k, n, rng);
          if (::testing::Test::HasFailure()) return;
        }
      }
    }
  }
}

TEST(SolverBitExactTest, DegenerateAndSkewedShapes) {
  common::Rng rng(31337);
  for (const GemmOp op :
       {GemmOp::kMatMul, GemmOp::kMatMulGradA, GemmOp::kMatMulGradB}) {
    ExpectAllSolversBitExact(op, 5, 0, 6, rng);    // k = 0: fwd zeroes,
                                                   // grad_b adds nothing
    ExpectAllSolversBitExact(op, 4, 9, 0, rng);    // n = 0: grad_a still
                                                   // adds +0.0 per element
    ExpectAllSolversBitExact(op, 0, 9, 6, rng);    // m = 0: empty everything
    ExpectAllSolversBitExact(op, 517, 3, 2, rng);  // tall-skinny
    ExpectAllSolversBitExact(op, 2, 3, 517, rng);  // wide
    ExpectAllSolversBitExact(op, 1, 300, 1, rng);  // long pure reduction
  }
}

TEST(SolverBitExactTest, MultipleKcBlocksKeepAccumulationOrder) {
  // k > 256 spans several KC blocks in the blocked solver; the running-C
  // accumulation across blocks must keep the reference's ascending-p chain.
  common::Rng rng(99);
  for (const GemmOp op :
       {GemmOp::kMatMul, GemmOp::kMatMulGradA, GemmOp::kMatMulGradB}) {
    ExpectAllSolversBitExact(op, 17, 300, 23, rng);
    ExpectAllSolversBitExact(op, 9, 513, 9, rng);
  }
}

}  // namespace
}  // namespace desalign::tensor::kernels::solver
