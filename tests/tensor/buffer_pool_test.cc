// BufferPool unit tests: bucketing, zeroing guarantees, stats accounting,
// the disabled (pre-pool) fallback, and an 8-thread acquire/release storm.
// The storm is also part of the sanitizer subset, so it runs under TSan and
// ASan in CI.

#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/kernels/buffer_pool.h"
#include "tensor/tensor.h"

namespace desalign::tensor::kernels {
namespace {

TEST(BufferPoolTest, AcquireReturnsRequestedSize) {
  BufferPool pool;
  for (size_t n : {size_t{1}, size_t{255}, size_t{256}, size_t{257},
                   size_t{1000}, size_t{65536}}) {
    auto buf = pool.Acquire(n, /*zero=*/false);
    EXPECT_EQ(buf.size(), n);
    pool.Release(std::move(buf));
  }
}

TEST(BufferPoolTest, ReuseHitsTheSameBucket) {
  BufferPool pool;
  auto buf = pool.Acquire(300, /*zero=*/false);
  float* original_ptr = buf.data();
  pool.Release(std::move(buf));
  // 300 and 400 both round up to the 512-float bucket, so the second
  // acquisition must reuse the cached allocation.
  auto again = pool.Acquire(400, /*zero=*/false);
  EXPECT_EQ(again.data(), original_ptr);
  const auto stats = pool.GetStats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.releases, 1);
  pool.Release(std::move(again));
}

TEST(BufferPoolTest, ZeroedAcquireIsZeroEvenAfterDirtyRelease) {
  BufferPool pool;
  auto dirty = pool.Acquire(512, /*zero=*/false);
  for (auto& v : dirty) v = 3.25f;
  pool.Release(std::move(dirty));
  auto clean = pool.Acquire(512, /*zero=*/true);
  for (float v : clean) ASSERT_EQ(v, 0.0f);
  pool.Release(std::move(clean));
}

TEST(BufferPoolTest, TinyRequestsRoundUpToTheSmallestBucket) {
  // Acquire(8) reserves the full 256-float minimum bucket capacity, so the
  // buffer is cacheable on release and can serve any small request later.
  BufferPool pool;
  auto tiny = pool.Acquire(8, /*zero=*/false);
  EXPECT_GE(tiny.capacity(), size_t{1} << BufferPool::kMinCapacityLog2);
  pool.Release(std::move(tiny));
  EXPECT_EQ(pool.GetStats().cached_buffers, 1);
  auto reuse = pool.Acquire(200, /*zero=*/false);
  EXPECT_EQ(pool.GetStats().hits, 1);
  pool.Release(std::move(reuse));
}

TEST(BufferPoolTest, SubBucketExternalBuffersAreDiscarded) {
  // Buffers that did not come from Acquire (e.g. Tensor::FromData storage)
  // may have less capacity than the smallest bucket; caching them would
  // poison the bucket with undersized storage, so Release drops them.
  BufferPool pool;
  std::vector<float> external(8, 1.0f);
  external.shrink_to_fit();
  pool.Release(std::move(external));
  const auto stats = pool.GetStats();
  EXPECT_EQ(stats.discards, 1);
  EXPECT_EQ(stats.cached_buffers, 0);
}

TEST(BufferPoolTest, FullBucketDiscardsExtraReleases) {
  BufferPool pool;
  std::vector<std::vector<float>> live;
  for (size_t i = 0; i < BufferPool::kMaxBuffersPerBucket + 5; ++i) {
    live.push_back(pool.Acquire(1 << BufferPool::kMinCapacityLog2,
                                /*zero=*/false));
  }
  for (auto& buf : live) pool.Release(std::move(buf));
  const auto stats = pool.GetStats();
  EXPECT_EQ(stats.cached_buffers,
            static_cast<int64_t>(BufferPool::kMaxBuffersPerBucket));
  EXPECT_EQ(stats.discards, 5);
}

TEST(BufferPoolTest, ClearDropsCachedBuffers) {
  BufferPool pool;
  pool.Release(pool.Acquire(1024, /*zero=*/false));
  ASSERT_GT(pool.GetStats().cached_buffers, 0);
  pool.Clear();
  EXPECT_EQ(pool.GetStats().cached_buffers, 0);
  EXPECT_EQ(pool.GetStats().cached_bytes, 0);
}

TEST(BufferPoolTest, DisabledPoolStillServesCorrectBuffers) {
  BufferPool pool;
  pool.set_enabled(false);
  auto zeroed = pool.Acquire(700, /*zero=*/true);
  EXPECT_EQ(zeroed.size(), 700u);
  for (float v : zeroed) ASSERT_EQ(v, 0.0f);
  pool.Release(std::move(zeroed));
  EXPECT_EQ(pool.GetStats().cached_buffers, 0);
  auto plain = pool.Acquire(700, /*zero=*/false);
  EXPECT_EQ(plain.size(), 700u);
  pool.Release(std::move(plain));
}

TEST(BufferPoolTest, StatsAreCoherentUnderConcurrency) {
  BufferPool pool;
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 2000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&pool, t] {
      common::Rng rng(static_cast<uint64_t>(1000 + t));
      std::vector<std::vector<float>> held;
      for (int i = 0; i < kItersPerThread; ++i) {
        const size_t n = 64 + static_cast<size_t>(rng.UniformInt(4096));
        const bool zero = rng.Bernoulli(0.5);
        auto buf = pool.Acquire(n, zero);
        ASSERT_EQ(buf.size(), n);
        if (zero) {
          ASSERT_EQ(buf[0], 0.0f);
          ASSERT_EQ(buf[n - 1], 0.0f);
        }
        buf[0] = static_cast<float>(t);  // dirty it for the next user
        held.push_back(std::move(buf));
        if (held.size() > 4 || rng.Bernoulli(0.3)) {
          pool.Release(std::move(held.back()));
          held.pop_back();
        }
      }
      for (auto& buf : held) pool.Release(std::move(buf));
    });
  }
  for (auto& w : workers) w.join();
  const auto stats = pool.GetStats();
  const int64_t total = kThreads * static_cast<int64_t>(kItersPerThread);
  EXPECT_EQ(stats.hits + stats.misses, total);
  EXPECT_EQ(stats.releases + stats.discards, total);
  EXPECT_GT(stats.hits, 0);
}

TEST(BufferPoolTest, PooledBufferRoundTripsThroughGlobalPool) {
  auto& pool = BufferPool::Global();
  pool.Clear();
  {
    PooledBuffer ws(2048, /*zero=*/true);
    ASSERT_EQ(ws.size(), 2048u);
    for (size_t i = 0; i < ws.size(); ++i) ws.data()[i] = 1.0f;
  }
  const auto before = pool.GetStats();
  {
    PooledBuffer again(2048, /*zero=*/false);
    ASSERT_EQ(again.size(), 2048u);
  }
  const auto after = pool.GetStats();
  EXPECT_EQ(after.hits, before.hits + 1);
}

TEST(BufferPoolTest, TensorStorageComesFromTheGlobalPool) {
  auto& pool = BufferPool::Global();
  { auto warm = Tensor::Create(64, 64); }
  const auto before = pool.GetStats();
  { auto t = Tensor::Create(64, 64); }
  const auto after = pool.GetStats();
  EXPECT_GE(after.hits, before.hits + 1);
  EXPECT_GE(after.releases, before.releases + 1);
}

}  // namespace
}  // namespace desalign::tensor::kernels
