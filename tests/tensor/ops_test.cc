#include "tensor/ops.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace desalign::tensor {
namespace {

TEST(OpsTest, AddSubMulDiv) {
  auto a = Tensor::FromData(1, 4, {1, 2, 3, 4});
  auto b = Tensor::FromData(1, 4, {4, 3, 2, 1});
  EXPECT_EQ(Add(a, b)->data(), std::vector<float>({5, 5, 5, 5}));
  EXPECT_EQ(Sub(a, b)->data(), std::vector<float>({-3, -1, 1, 3}));
  EXPECT_EQ(Mul(a, b)->data(), std::vector<float>({4, 6, 6, 4}));
  auto d = Div(a, b);
  EXPECT_FLOAT_EQ(d->data()[0], 0.25f);
  EXPECT_FLOAT_EQ(d->data()[3], 4.0f);
}

TEST(OpsTest, Broadcasts) {
  auto a = Tensor::FromData(2, 2, {1, 2, 3, 4});
  auto row = Tensor::FromData(1, 2, {10, 20});
  auto col = Tensor::FromData(2, 1, {2, 3});
  EXPECT_EQ(AddRowVector(a, row)->data(),
            std::vector<float>({11, 22, 13, 24}));
  EXPECT_EQ(MulRowVector(a, row)->data(),
            std::vector<float>({10, 40, 30, 80}));
  EXPECT_EQ(MulColVector(a, col)->data(),
            std::vector<float>({2, 4, 9, 12}));
}

TEST(OpsTest, ScaleAddScalarNeg) {
  auto a = Tensor::FromData(1, 3, {1, -2, 3});
  EXPECT_EQ(Scale(a, 2.0f)->data(), std::vector<float>({2, -4, 6}));
  EXPECT_EQ(AddScalar(a, 1.0f)->data(), std::vector<float>({2, -1, 4}));
  EXPECT_EQ(Neg(a)->data(), std::vector<float>({-1, 2, -3}));
}

TEST(OpsTest, MatMulSmall) {
  auto a = Tensor::FromData(2, 3, {1, 2, 3, 4, 5, 6});
  auto b = Tensor::FromData(3, 2, {7, 8, 9, 10, 11, 12});
  auto c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c->At(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c->At(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c->At(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c->At(1, 1), 154.0f);
}

TEST(OpsTest, TransposeValues) {
  auto a = Tensor::FromData(2, 3, {1, 2, 3, 4, 5, 6});
  auto t = Transpose(a);
  EXPECT_EQ(t->rows(), 3);
  EXPECT_EQ(t->cols(), 2);
  EXPECT_FLOAT_EQ(t->At(2, 1), 6.0f);
  EXPECT_FLOAT_EQ(t->At(0, 1), 4.0f);
}

TEST(OpsTest, Nonlinearities) {
  auto a = Tensor::FromData(1, 2, {-1.0f, 2.0f});
  EXPECT_EQ(Relu(a)->data(), std::vector<float>({0, 2}));
  auto lr = LeakyRelu(a, 0.1f);
  EXPECT_FLOAT_EQ(lr->data()[0], -0.1f);
  EXPECT_FLOAT_EQ(lr->data()[1], 2.0f);
  auto sg = Sigmoid(Tensor::FromData(1, 1, {0.0f}));
  EXPECT_FLOAT_EQ(sg->data()[0], 0.5f);
  auto th = Tanh(Tensor::FromData(1, 1, {0.0f}));
  EXPECT_FLOAT_EQ(th->data()[0], 0.0f);
  auto ex = Exp(Tensor::FromData(1, 1, {1.0f}));
  EXPECT_NEAR(ex->data()[0], 2.71828f, 1e-4);
  auto lg = LogSafe(Tensor::FromData(1, 1, {std::exp(2.0f)}));
  EXPECT_NEAR(lg->data()[0], 2.0f, 1e-4);
  EXPECT_EQ(Square(a)->data(), std::vector<float>({1, 4}));
}

TEST(OpsTest, RowSoftmaxRowsSumToOne) {
  auto a = Tensor::FromData(2, 3, {1, 2, 3, -5, 0, 5});
  auto s = RowSoftmax(a);
  for (int64_t r = 0; r < 2; ++r) {
    float sum = 0.0f;
    for (int64_t c = 0; c < 3; ++c) {
      sum += s->At(r, c);
      EXPECT_GT(s->At(r, c), 0.0f);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
  // Monotone in the logits.
  EXPECT_LT(s->At(0, 0), s->At(0, 1));
  EXPECT_LT(s->At(0, 1), s->At(0, 2));
}

TEST(OpsTest, RowSoftmaxNumericallyStableForLargeLogits) {
  auto a = Tensor::FromData(1, 2, {1000.0f, 1001.0f});
  auto s = RowSoftmax(a);
  EXPECT_FALSE(std::isnan(s->data()[0]));
  EXPECT_NEAR(s->data()[0] + s->data()[1], 1.0f, 1e-5);
}

TEST(OpsTest, RowLogSoftmaxMatchesLogOfSoftmax) {
  auto a = Tensor::FromData(1, 3, {0.5f, -1.0f, 2.0f});
  auto ls = RowLogSoftmax(a);
  auto s = RowSoftmax(a);
  for (int64_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(ls->At(0, c), std::log(s->At(0, c)), 1e-5);
  }
}

TEST(OpsTest, SegmentSoftmaxSumsToOnePerSegment) {
  auto scores = Tensor::FromData(5, 1, {1, 2, 3, -1, 4});
  std::vector<int64_t> seg = {0, 0, 1, 1, 1};
  auto s = SegmentSoftmax(scores, seg, 2);
  EXPECT_NEAR(s->data()[0] + s->data()[1], 1.0f, 1e-5);
  EXPECT_NEAR(s->data()[2] + s->data()[3] + s->data()[4], 1.0f, 1e-5);
}

TEST(OpsTest, SegmentSoftmaxSingletonSegmentIsOne) {
  auto scores = Tensor::FromData(2, 1, {-100.0f, 3.0f});
  auto s = SegmentSoftmax(scores, {0, 1}, 2);
  EXPECT_NEAR(s->data()[0], 1.0f, 1e-5);
  EXPECT_NEAR(s->data()[1], 1.0f, 1e-5);
}

TEST(OpsTest, Reductions) {
  auto a = Tensor::FromData(2, 2, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(Sum(a)->ScalarValue(), 10.0f);
  EXPECT_FLOAT_EQ(Mean(a)->ScalarValue(), 2.5f);
  auto rs = RowSum(a);
  EXPECT_FLOAT_EQ(rs->data()[0], 3.0f);
  EXPECT_FLOAT_EQ(rs->data()[1], 7.0f);
  EXPECT_FLOAT_EQ(SumSquares(a)->ScalarValue(), 30.0f);
}

TEST(OpsTest, SegmentSumScatters) {
  auto v = Tensor::FromData(3, 2, {1, 2, 3, 4, 5, 6});
  auto out = SegmentSum(v, {1, 0, 1}, 2);
  EXPECT_FLOAT_EQ(out->At(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(out->At(0, 1), 4.0f);
  EXPECT_FLOAT_EQ(out->At(1, 0), 6.0f);
  EXPECT_FLOAT_EQ(out->At(1, 1), 8.0f);
}

TEST(OpsTest, ConcatAndSliceColsInverse) {
  auto a = Tensor::FromData(2, 1, {1, 2});
  auto b = Tensor::FromData(2, 2, {3, 4, 5, 6});
  auto c = ConcatCols({a, b});
  EXPECT_EQ(c->cols(), 3);
  EXPECT_FLOAT_EQ(c->At(1, 2), 6.0f);
  auto back = SliceCols(c, 1, 2);
  EXPECT_EQ(back->data(), b->data());
}

TEST(OpsTest, ConcatRows) {
  auto a = Tensor::FromData(1, 2, {1, 2});
  auto b = Tensor::FromData(2, 2, {3, 4, 5, 6});
  auto c = ConcatRows({a, b});
  EXPECT_EQ(c->rows(), 3);
  EXPECT_FLOAT_EQ(c->At(2, 1), 6.0f);
}

TEST(OpsTest, GatherRowsSelectsAndRepeats) {
  auto a = Tensor::FromData(3, 2, {1, 2, 3, 4, 5, 6});
  auto g = GatherRows(a, {2, 0, 2});
  EXPECT_EQ(g->rows(), 3);
  EXPECT_FLOAT_EQ(g->At(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(g->At(1, 1), 2.0f);
  EXPECT_FLOAT_EQ(g->At(2, 1), 6.0f);
}

TEST(OpsTest, TakeDiag) {
  auto a = Tensor::FromData(2, 2, {1, 2, 3, 4});
  auto d = TakeDiag(a);
  EXPECT_EQ(d->rows(), 2);
  EXPECT_FLOAT_EQ(d->data()[0], 1.0f);
  EXPECT_FLOAT_EQ(d->data()[1], 4.0f);
}

TEST(OpsTest, RowL2NormalizeUnitNorm) {
  auto a = Tensor::FromData(2, 2, {3, 4, 0, 5});
  auto n = RowL2Normalize(a);
  EXPECT_NEAR(n->At(0, 0), 0.6f, 1e-5);
  EXPECT_NEAR(n->At(0, 1), 0.8f, 1e-5);
  EXPECT_NEAR(n->At(1, 1), 1.0f, 1e-5);
}

TEST(OpsTest, RowL2NormalizeZeroRowIsSafe) {
  auto a = Tensor::FromData(1, 3, {0, 0, 0});
  auto n = RowL2Normalize(a);
  for (float v : n->data()) {
    EXPECT_FALSE(std::isnan(v));
    EXPECT_EQ(v, 0.0f);
  }
}

TEST(OpsTest, LayerNormRowMomentsAndAffine) {
  auto x = Tensor::FromData(1, 4, {1, 2, 3, 4});
  auto gamma = Tensor::FromData(1, 4, {1, 1, 1, 1});
  auto beta = Tensor::FromData(1, 4, {0, 0, 0, 0});
  auto y = LayerNorm(x, gamma, beta);
  float mean = 0.0f;
  float var = 0.0f;
  for (int64_t c = 0; c < 4; ++c) mean += y->At(0, c);
  mean /= 4;
  for (int64_t c = 0; c < 4; ++c) {
    var += (y->At(0, c) - mean) * (y->At(0, c) - mean);
  }
  var /= 4;
  EXPECT_NEAR(mean, 0.0f, 1e-5);
  EXPECT_NEAR(var, 1.0f, 1e-3);
  // Affine shift applies.
  auto beta2 = Tensor::FromData(1, 4, {5, 5, 5, 5});
  auto y2 = LayerNorm(x, gamma, beta2);
  EXPECT_NEAR(y2->At(0, 0), y->At(0, 0) + 5.0f, 1e-5);
}

TEST(OpsTest, DropoutModes) {
  common::Rng rng(3);
  auto a = Tensor::Full(10, 10, 1.0f);
  // Inference: identity (same object).
  auto pass = Dropout(a, 0.5f, rng, /*training=*/false);
  EXPECT_EQ(pass.get(), a.get());
  // p = 0: identity.
  auto pass2 = Dropout(a, 0.0f, rng, /*training=*/true);
  EXPECT_EQ(pass2.get(), a.get());
  // Training: zeros appear and survivors are scaled by 1/(1-p).
  auto d = Dropout(a, 0.5f, rng, /*training=*/true);
  int zeros = 0;
  for (float v : d->data()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(v, 2.0f);
    }
  }
  EXPECT_GT(zeros, 20);
  EXPECT_LT(zeros, 80);
}

TEST(OpsTest, SpMMMatchesDense) {
  auto m = CsrMatrix::FromTriplets(
      2, 3, {{0, 0, 1.0f}, {0, 2, 2.0f}, {1, 1, 3.0f}});
  auto x = Tensor::FromData(3, 2, {1, 10, 2, 20, 3, 30});
  auto y = SpMM(m, x);
  EXPECT_FLOAT_EQ(y->At(0, 0), 7.0f);
  EXPECT_FLOAT_EQ(y->At(0, 1), 70.0f);
  EXPECT_FLOAT_EQ(y->At(1, 0), 6.0f);
  EXPECT_FLOAT_EQ(y->At(1, 1), 60.0f);
}

TEST(OpsTest, RowDotMatchesManual) {
  auto a = Tensor::FromData(2, 2, {1, 2, 3, 4});
  auto b = Tensor::FromData(2, 2, {5, 6, 7, 8});
  auto d = RowDot(a, b);
  EXPECT_FLOAT_EQ(d->data()[0], 17.0f);
  EXPECT_FLOAT_EQ(d->data()[1], 53.0f);
}


TEST(OpsTest, AbsAndClip) {
  auto a = Tensor::FromData(1, 4, {-2, -0.5f, 0.5f, 2});
  EXPECT_EQ(Abs(a)->data(), std::vector<float>({2, 0.5f, 0.5f, 2}));
  auto c = ClipByValue(a, -1.0f, 1.0f);
  EXPECT_EQ(c->data(), std::vector<float>({-1, -0.5f, 0.5f, 1}));
}

TEST(OpsTest, ElementwiseMaxMin) {
  auto a = Tensor::FromData(1, 3, {1, 5, 3});
  auto b = Tensor::FromData(1, 3, {2, 4, 3});
  EXPECT_EQ(MaxElementwise(a, b)->data(), std::vector<float>({2, 5, 3}));
  EXPECT_EQ(MinElementwise(a, b)->data(), std::vector<float>({1, 4, 3}));
}

TEST(OpsTest, RowMaxAndArgMax) {
  auto a = Tensor::FromData(2, 3, {1, 7, 3, 9, 2, 8});
  auto m = RowMax(a);
  EXPECT_FLOAT_EQ(m->data()[0], 7.0f);
  EXPECT_FLOAT_EQ(m->data()[1], 9.0f);
  auto idx = ArgMaxRows(*a);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

TEST(OpsTest, ColMean) {
  auto a = Tensor::FromData(2, 2, {1, 2, 3, 4});
  auto m = ColMean(a);
  EXPECT_EQ(m->rows(), 1);
  EXPECT_FLOAT_EQ(m->data()[0], 2.0f);
  EXPECT_FLOAT_EQ(m->data()[1], 3.0f);
}

}  // namespace
}  // namespace desalign::tensor
