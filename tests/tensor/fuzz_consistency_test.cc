// Randomized consistency checks: sparse kernels against naive dense
// references, and autograd under structural stress (deep chains, wide
// fan-out, mixed reuse).

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "tensor/sparse.h"
#include "tensor/tensor.h"

namespace desalign::tensor {
namespace {

// Dense mirror of a sparse matrix for reference computations.
std::vector<double> Densify(const CsrMatrix& m) {
  std::vector<double> dense(static_cast<size_t>(m.rows() * m.cols()), 0.0);
  for (int64_t r = 0; r < m.rows(); ++r) {
    for (int64_t p = m.row_ptr()[r]; p < m.row_ptr()[r + 1]; ++p) {
      dense[r * m.cols() + m.col_idx()[p]] = m.values()[p];
    }
  }
  return dense;
}

CsrMatrixPtr RandomSparse(int64_t rows, int64_t cols, double density,
                          common::Rng& rng) {
  std::vector<Triplet> t;
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      if (rng.Bernoulli(density)) {
        t.push_back({r, c, rng.UniformF(-2.0f, 2.0f)});
      }
    }
  }
  if (t.empty()) t.push_back({0, 0, 1.0f});
  return CsrMatrix::FromTriplets(rows, cols, std::move(t));
}

class SparseFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SparseFuzzTest, MultiplyMatchesDenseReference) {
  common::Rng rng(GetParam());
  const int64_t rows = 5 + rng.UniformInt(20);
  const int64_t cols = 5 + rng.UniformInt(20);
  const int64_t k = 1 + rng.UniformInt(6);
  auto m = RandomSparse(rows, cols, 0.2, rng);
  auto dense = Densify(*m);
  std::vector<float> x(static_cast<size_t>(cols * k));
  for (auto& v : x) v = rng.UniformF(-1.0f, 1.0f);
  std::vector<float> y(static_cast<size_t>(rows * k));
  m->Multiply(x.data(), k, y.data());
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t j = 0; j < k; ++j) {
      double expected = 0.0;
      for (int64_t c = 0; c < cols; ++c) {
        expected += dense[r * cols + c] * x[c * k + j];
      }
      EXPECT_NEAR(y[r * k + j], expected, 1e-3);
    }
  }
}

TEST_P(SparseFuzzTest, TransposeMatchesDenseReference) {
  common::Rng rng(GetParam() + 1000);
  const int64_t rows = 4 + rng.UniformInt(12);
  const int64_t cols = 4 + rng.UniformInt(12);
  auto m = RandomSparse(rows, cols, 0.25, rng);
  auto t = m->Transpose();
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      EXPECT_FLOAT_EQ(m->At(r, c), t->At(c, r));
    }
  }
}

TEST_P(SparseFuzzTest, AddMatchesDenseReference) {
  common::Rng rng(GetParam() + 2000);
  const int64_t n = 4 + rng.UniformInt(10);
  auto a = RandomSparse(n, n, 0.3, rng);
  auto b = RandomSparse(n, n, 0.3, rng);
  const float alpha = rng.UniformF(-2.0f, 2.0f);
  const float beta = rng.UniformF(-2.0f, 2.0f);
  auto c = a->Add(*b, alpha, beta);
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t j = 0; j < n; ++j) {
      EXPECT_NEAR(c->At(r, j), alpha * a->At(r, j) + beta * b->At(r, j),
                  1e-4);
    }
  }
}

TEST_P(SparseFuzzTest, SubMatrixMatchesDenseReference) {
  common::Rng rng(GetParam() + 3000);
  const int64_t n = 6 + rng.UniformInt(10);
  auto m = RandomSparse(n, n, 0.3, rng);
  std::vector<bool> rmask(n), cmask(n);
  for (int64_t i = 0; i < n; ++i) {
    rmask[i] = rng.Bernoulli(0.6);
    cmask[i] = rng.Bernoulli(0.6);
  }
  rmask[0] = cmask[0] = true;  // non-empty selection
  auto sub = m->SubMatrix(rmask, cmask);
  int64_t rr = 0;
  for (int64_t r = 0; r < n; ++r) {
    if (!rmask[r]) continue;
    int64_t cc = 0;
    for (int64_t c = 0; c < n; ++c) {
      if (!cmask[c]) continue;
      EXPECT_FLOAT_EQ(sub->At(rr, cc), m->At(r, c));
      ++cc;
    }
    ++rr;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(AutogradStressTest, DeepChainGradientIsProductOfScales) {
  auto x = Tensor::FromData(1, 1, {1.0f}, /*requires_grad=*/true);
  TensorPtr y = x;
  double expected = 1.0;
  for (int i = 0; i < 100; ++i) {
    const float s = 1.0f + 0.01f * static_cast<float>(i % 5);
    y = Scale(y, s);
    expected *= s;
  }
  Sum(y)->Backward();
  EXPECT_NEAR(x->grad()[0], expected, expected * 1e-4);
}

TEST(AutogradStressTest, WideFanOutAccumulates) {
  auto x = Tensor::FromData(1, 4, {1, 2, 3, 4}, /*requires_grad=*/true);
  TensorPtr total;
  const int branches = 50;
  for (int b = 0; b < branches; ++b) {
    auto term = Sum(Scale(x, static_cast<float>(b % 3)));
    total = total ? Add(total, term) : term;
  }
  total->Backward();
  // Σ_b (b % 3) over 50 branches: 17 zeros, 17 ones, 16 twos => 49.
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(x->grad()[i], 49.0f);
  }
}

TEST(AutogradStressTest, RepeatedBackwardFromFreshGraphsAccumulates) {
  auto x = Tensor::FromData(1, 1, {2.0f}, /*requires_grad=*/true);
  for (int i = 0; i < 3; ++i) {
    Sum(Square(x))->Backward();  // d/dx x^2 = 4 each time
  }
  EXPECT_FLOAT_EQ(x->grad()[0], 12.0f);
  x->ZeroGrad();
  Sum(Square(x))->Backward();
  EXPECT_FLOAT_EQ(x->grad()[0], 4.0f);
}

TEST(AutogradStressTest, GraphFreesItselfAfterLossScopeEnds) {
  // Children hold their parents; once the loss goes out of scope, the
  // intermediate nodes must be released (use_count back to 1 for leaves).
  auto x = Tensor::FromData(2, 2, {1, 2, 3, 4}, /*requires_grad=*/true);
  {
    auto loss = Sum(Square(MatMul(x, Transpose(x))));
    loss->Backward();
    EXPECT_GT(x.use_count(), 1);  // referenced by the graph
  }
  EXPECT_EQ(x.use_count(), 1);  // graph gone, no cycles
}

}  // namespace
}  // namespace desalign::tensor
