#include "tensor/init.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace desalign::tensor {
namespace {

TEST(InitTest, GlorotUniformWithinBounds) {
  common::Rng rng(1);
  auto t = Tensor::Create(40, 60);
  GlorotUniform(*t, rng);
  const float bound = std::sqrt(6.0f / (40 + 60));
  float max_abs = 0.0f;
  for (float v : t->data()) max_abs = std::max(max_abs, std::fabs(v));
  EXPECT_LE(max_abs, bound);
  EXPECT_GT(max_abs, bound * 0.8f);  // spread actually reaches the bound
}

TEST(InitTest, GlorotUniformRoughlyZeroMean) {
  common::Rng rng(2);
  auto t = Tensor::Create(100, 100);
  GlorotUniform(*t, rng);
  double sum = 0.0;
  for (float v : t->data()) sum += v;
  EXPECT_NEAR(sum / t->size(), 0.0, 0.01);
}

TEST(InitTest, FillNormalMoments) {
  common::Rng rng(3);
  auto t = Tensor::Create(100, 100);
  FillNormal(*t, rng, 2.0f, 0.5f);
  double sum = 0.0;
  double sq = 0.0;
  for (float v : t->data()) {
    sum += v;
    sq += static_cast<double>(v) * v;
  }
  const double mean = sum / t->size();
  const double var = sq / t->size() - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 0.5, 0.05);
}

TEST(InitTest, FillUniformRange) {
  common::Rng rng(4);
  auto t = Tensor::Create(50, 50);
  FillUniform(*t, rng, -1.0f, 2.0f);
  for (float v : t->data()) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LT(v, 2.0f);
  }
}

TEST(InitTest, FillConstantAndDiagonal) {
  auto t = Tensor::Create(3, 5);
  FillConstant(*t, 4.0f);
  for (float v : t->data()) EXPECT_EQ(v, 4.0f);
  auto d = Tensor::Create(3, 5);
  FillDiagonal(*d, 2.0f);
  EXPECT_EQ(d->At(0, 0), 2.0f);
  EXPECT_EQ(d->At(2, 2), 2.0f);
  EXPECT_EQ(d->At(0, 1), 0.0f);
}

TEST(InitTest, DeterministicAcrossRuns) {
  common::Rng a(9);
  common::Rng b(9);
  auto ta = Tensor::Create(8, 8);
  auto tb = Tensor::Create(8, 8);
  GlorotUniform(*ta, a);
  GlorotUniform(*tb, b);
  EXPECT_EQ(ta->data(), tb->data());
}

}  // namespace
}  // namespace desalign::tensor
