// Concurrency test for the solver registry (run under TSan by the
// sanitizer CI stage): reader threads hammer Select()/Run while the main
// thread repeatedly reloads the tuning cache, alternating between a valid
// find-db and a corrupt one. Selection must stay valid (some registered
// solver, never null, never a dangling record) throughout — the registry
// copies what it needs under the lock and the solver table itself is
// immutable, so readers never observe a half-installed cache.

#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/kernels/solver/find_db.h"
#include "tensor/kernels/solver/solver.h"

namespace desalign::tensor::kernels::solver {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("desalign_solver_race_") + name + "_" +
           std::to_string(::getpid()) + ".bin"))
      .string();
}

TEST(SolverRaceTest, ConcurrentSelectDuringCacheReload) {
  auto& registry = SolverRegistry::Global();
  registry.ClearCache();

  const std::string good_path = TempPath("good");
  const std::string bad_path = TempPath("bad");
  FindDb db;
  for (const GemmOp op :
       {GemmOp::kMatMul, GemmOp::kMatMulGradA, GemmOp::kMatMulGradB}) {
    FindDbRecord rec;
    rec.key = ProblemKey::FromProblem(
        GemmProblem{op, 24, 24, 24, IsaLevel::kScalar, 1});
    rec.solver_id = "gemm.blocked8x8";
    db.Upsert(rec);
  }
  ASSERT_TRUE(db.Save(good_path).ok());
  {
    std::ofstream out(bad_path, std::ios::binary | std::ios::trunc);
    out << "DSFD not a real find-db";
  }

  constexpr int kReaders = 4;
  constexpr int kReloads = 50;
  std::atomic<bool> stop{false};
  std::atomic<int> bad_selections{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&registry, &stop, &bad_selections, t] {
      common::Rng rng(static_cast<uint64_t>(1000 + t));
      const int64_t m = 24, k = 24, n = 24;
      std::vector<float> a(static_cast<size_t>(m * k));
      std::vector<float> b(static_cast<size_t>(k * n));
      std::vector<float> y(static_cast<size_t>(m * n), 0.0f);
      for (auto& x : a) x = rng.UniformF(-1.0f, 1.0f);
      for (auto& x : b) x = rng.UniformF(-1.0f, 1.0f);
      while (!stop.load(std::memory_order_relaxed)) {
        const GemmOp op = static_cast<GemmOp>(rng.UniformInt(3));
        GemmProblem p{op, m, k, n, IsaLevel::kScalar, 1};
        const GemmSolver* s = registry.Select(p);
        if (s == nullptr || registry.FindById(s->id()) != s) {
          bad_selections.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (op == GemmOp::kMatMul) s->Run(p, a.data(), b.data(), y.data());
      }
    });
  }

  for (int i = 0; i < kReloads; ++i) {
    // Alternate a clean install with a failed one; the failed reload must
    // clear the cache, not leave readers pointing at freed records.
    EXPECT_TRUE(registry.ReloadCache(good_path).ok());
    EXPECT_FALSE(registry.ReloadCache(bad_path).ok());
    registry.ClearCache();
  }
  EXPECT_TRUE(registry.ReloadCache(good_path).ok());

  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  EXPECT_EQ(bad_selections.load(), 0);
  // After the dust settles the cached winner is served as usual.
  EXPECT_STREQ(registry.Select(GemmProblem{GemmOp::kMatMul, 24, 24, 24,
                                           IsaLevel::kScalar, 1})
                   ->id(),
               "gemm.blocked8x8");

  registry.ClearCache();
  std::filesystem::remove(good_path);
  std::filesystem::remove(bad_path);
}

}  // namespace
}  // namespace desalign::tensor::kernels::solver
