#include "tensor/sparse.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace desalign::tensor {
namespace {

CsrMatrixPtr SmallMatrix() {
  // [ 1 0 2 ]
  // [ 0 3 0 ]
  return CsrMatrix::FromTriplets(
      2, 3, {{0, 0, 1.0f}, {0, 2, 2.0f}, {1, 1, 3.0f}});
}

TEST(CsrMatrixTest, FromTripletsShapeAndNnz) {
  auto m = SmallMatrix();
  EXPECT_EQ(m->rows(), 2);
  EXPECT_EQ(m->cols(), 3);
  EXPECT_EQ(m->nnz(), 3);
}

TEST(CsrMatrixTest, AtReadsEntries) {
  auto m = SmallMatrix();
  EXPECT_FLOAT_EQ(m->At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(m->At(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(m->At(0, 2), 2.0f);
  EXPECT_FLOAT_EQ(m->At(1, 1), 3.0f);
}

TEST(CsrMatrixTest, DuplicateTripletsAreSummed) {
  auto m = CsrMatrix::FromTriplets(1, 1, {{0, 0, 1.0f}, {0, 0, 2.5f}});
  EXPECT_EQ(m->nnz(), 1);
  EXPECT_FLOAT_EQ(m->At(0, 0), 3.5f);
}

TEST(CsrMatrixTest, MultiplyVector) {
  auto m = SmallMatrix();
  const float x[3] = {1.0f, 2.0f, 3.0f};
  float y[2];
  m->Multiply(x, 1, y);
  EXPECT_FLOAT_EQ(y[0], 1.0f * 1 + 2.0f * 3);  // 7
  EXPECT_FLOAT_EQ(y[1], 3.0f * 2);             // 6
}

TEST(CsrMatrixTest, MultiplyMultiColumn) {
  auto m = SmallMatrix();
  // x is 3x2 row-major.
  const float x[6] = {1, 10, 2, 20, 3, 30};
  float y[4];
  m->Multiply(x, 2, y);
  EXPECT_FLOAT_EQ(y[0], 7.0f);
  EXPECT_FLOAT_EQ(y[1], 70.0f);
  EXPECT_FLOAT_EQ(y[2], 6.0f);
  EXPECT_FLOAT_EQ(y[3], 60.0f);
}

TEST(CsrMatrixTest, TransposeEntries) {
  auto t = SmallMatrix()->Transpose();
  EXPECT_EQ(t->rows(), 3);
  EXPECT_EQ(t->cols(), 2);
  EXPECT_FLOAT_EQ(t->At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(t->At(2, 0), 2.0f);
  EXPECT_FLOAT_EQ(t->At(1, 1), 3.0f);
}

TEST(CsrMatrixTest, TransposeTwiceIsIdentityOp) {
  auto m = SmallMatrix();
  auto tt = m->Transpose()->Transpose();
  for (int64_t r = 0; r < 2; ++r) {
    for (int64_t c = 0; c < 3; ++c) {
      EXPECT_FLOAT_EQ(tt->At(r, c), m->At(r, c));
    }
  }
}

TEST(CsrMatrixTest, AddWithCoefficients) {
  auto a = CsrMatrix::FromTriplets(2, 2, {{0, 0, 1.0f}, {1, 1, 2.0f}});
  auto b = CsrMatrix::FromTriplets(2, 2, {{0, 0, 3.0f}, {0, 1, 4.0f}});
  auto c = a->Add(*b, 2.0f, -1.0f);  // 2a - b
  EXPECT_FLOAT_EQ(c->At(0, 0), -1.0f);
  EXPECT_FLOAT_EQ(c->At(0, 1), -4.0f);
  EXPECT_FLOAT_EQ(c->At(1, 1), 4.0f);
}

TEST(CsrMatrixTest, Identity) {
  auto eye = CsrMatrix::Identity(3);
  EXPECT_EQ(eye->nnz(), 3);
  const float x[3] = {5, 6, 7};
  float y[3];
  eye->Multiply(x, 1, y);
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  EXPECT_FLOAT_EQ(y[1], 6.0f);
  EXPECT_FLOAT_EQ(y[2], 7.0f);
}

TEST(CsrMatrixTest, RowSums) {
  auto sums = SmallMatrix()->RowSums();
  ASSERT_EQ(sums.size(), 2u);
  EXPECT_FLOAT_EQ(sums[0], 3.0f);
  EXPECT_FLOAT_EQ(sums[1], 3.0f);
}

TEST(CsrMatrixTest, SymmetryCheck) {
  auto sym = CsrMatrix::FromTriplets(
      2, 2, {{0, 1, 2.0f}, {1, 0, 2.0f}, {0, 0, 1.0f}});
  EXPECT_TRUE(sym->IsSymmetric());
  auto asym = CsrMatrix::FromTriplets(2, 2, {{0, 1, 2.0f}});
  EXPECT_FALSE(asym->IsSymmetric());
  auto rect = CsrMatrix::FromTriplets(2, 3, {{0, 1, 2.0f}});
  EXPECT_FALSE(rect->IsSymmetric());
}

// The one-pass counting-sort build must be insensitive to triplet order for
// duplicate-free inputs: any permutation yields the identical CSR arrays.
TEST(CsrMatrixTest, FromTripletsOrderInvariantWithoutDuplicates) {
  common::Rng rng(77);
  std::vector<Triplet> triplets;
  for (int64_t r = 0; r < 17; ++r) {
    for (int64_t c = 0; c < 23; ++c) {
      if (rng.Bernoulli(0.3)) {
        triplets.push_back({r, c, rng.UniformF(-2.0f, 2.0f)});
      }
    }
  }
  auto sorted = triplets;
  auto shuffled = triplets;
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1],
              shuffled[static_cast<size_t>(rng.UniformInt(
                  static_cast<int64_t>(i)))]);
  }
  auto a = CsrMatrix::FromTriplets(17, 23, std::move(sorted));
  auto b = CsrMatrix::FromTriplets(17, 23, std::move(shuffled));
  EXPECT_EQ(a->row_ptr(), b->row_ptr());
  EXPECT_EQ(a->col_idx(), b->col_idx());
  EXPECT_EQ(a->values(), b->values());
}

// With duplicates, summation follows insertion order (stable within-row
// sort), so repeated builds from the same triplet list are bit-identical.
TEST(CsrMatrixTest, FromTripletsDuplicateSummationIsDeterministic) {
  std::vector<Triplet> triplets = {
      {0, 1, 0.1f}, {1, 0, 2.0f}, {0, 1, 0.2f}, {0, 0, -1.0f},
      {0, 1, 0.3f}, {1, 0, -0.5f}};
  auto a = CsrMatrix::FromTriplets(2, 2, triplets);
  auto b = CsrMatrix::FromTriplets(2, 2, triplets);
  EXPECT_EQ(a->nnz(), 3);
  EXPECT_EQ(a->values(), b->values());
  // Insertion order: (0.1 + 0.2) + 0.3.
  EXPECT_FLOAT_EQ(a->At(0, 1), (0.1f + 0.2f) + 0.3f);
  EXPECT_FLOAT_EQ(a->At(1, 0), 1.5f);
}

// The counting-sort transpose must produce canonical CSR (ascending columns
// within each row, matching what FromTriplets would build) and move values
// bit-unchanged — checked against an explicit triplet round-trip.
TEST(CsrMatrixTest, TransposeMatchesTripletRoundTrip) {
  common::Rng rng(78);
  std::vector<Triplet> triplets;
  for (int64_t r = 0; r < 29; ++r) {
    for (int64_t c = 0; c < 13; ++c) {
      if (rng.Bernoulli(0.25)) {
        triplets.push_back({r, c, rng.UniformF(-2.0f, 2.0f)});
      }
    }
  }
  auto m = CsrMatrix::FromTriplets(29, 13, std::move(triplets));
  std::vector<Triplet> flipped;
  for (int64_t r = 0; r < m->rows(); ++r) {
    for (int64_t p = m->row_ptr()[r]; p < m->row_ptr()[r + 1]; ++p) {
      flipped.push_back({m->col_idx()[p], r, m->values()[p]});
    }
  }
  auto expected = CsrMatrix::FromTriplets(13, 29, std::move(flipped));
  auto t = m->Transpose();
  EXPECT_EQ(t->rows(), 13);
  EXPECT_EQ(t->cols(), 29);
  EXPECT_EQ(t->row_ptr(), expected->row_ptr());
  EXPECT_EQ(t->col_idx(), expected->col_idx());
  EXPECT_EQ(t->values(), expected->values());
}

TEST(CsrMatrixTest, TransposeHandlesEmptyRowsAndCols) {
  // Column 1 and row 2 are empty; both must survive the counting sort as
  // empty rows/columns of the transpose.
  auto m = CsrMatrix::FromTriplets(3, 3, {{0, 0, 1.0f}, {1, 2, 2.0f}});
  auto t = m->Transpose();
  EXPECT_EQ(t->nnz(), 2);
  EXPECT_FLOAT_EQ(t->At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(t->At(2, 1), 2.0f);
  EXPECT_EQ(t->row_ptr()[1], t->row_ptr()[2]);  // transposed row 1 is empty
}

}  // namespace
}  // namespace desalign::tensor
