#include "tensor/sparse.h"

#include <gtest/gtest.h>

namespace desalign::tensor {
namespace {

CsrMatrixPtr SmallMatrix() {
  // [ 1 0 2 ]
  // [ 0 3 0 ]
  return CsrMatrix::FromTriplets(
      2, 3, {{0, 0, 1.0f}, {0, 2, 2.0f}, {1, 1, 3.0f}});
}

TEST(CsrMatrixTest, FromTripletsShapeAndNnz) {
  auto m = SmallMatrix();
  EXPECT_EQ(m->rows(), 2);
  EXPECT_EQ(m->cols(), 3);
  EXPECT_EQ(m->nnz(), 3);
}

TEST(CsrMatrixTest, AtReadsEntries) {
  auto m = SmallMatrix();
  EXPECT_FLOAT_EQ(m->At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(m->At(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(m->At(0, 2), 2.0f);
  EXPECT_FLOAT_EQ(m->At(1, 1), 3.0f);
}

TEST(CsrMatrixTest, DuplicateTripletsAreSummed) {
  auto m = CsrMatrix::FromTriplets(1, 1, {{0, 0, 1.0f}, {0, 0, 2.5f}});
  EXPECT_EQ(m->nnz(), 1);
  EXPECT_FLOAT_EQ(m->At(0, 0), 3.5f);
}

TEST(CsrMatrixTest, MultiplyVector) {
  auto m = SmallMatrix();
  const float x[3] = {1.0f, 2.0f, 3.0f};
  float y[2];
  m->Multiply(x, 1, y);
  EXPECT_FLOAT_EQ(y[0], 1.0f * 1 + 2.0f * 3);  // 7
  EXPECT_FLOAT_EQ(y[1], 3.0f * 2);             // 6
}

TEST(CsrMatrixTest, MultiplyMultiColumn) {
  auto m = SmallMatrix();
  // x is 3x2 row-major.
  const float x[6] = {1, 10, 2, 20, 3, 30};
  float y[4];
  m->Multiply(x, 2, y);
  EXPECT_FLOAT_EQ(y[0], 7.0f);
  EXPECT_FLOAT_EQ(y[1], 70.0f);
  EXPECT_FLOAT_EQ(y[2], 6.0f);
  EXPECT_FLOAT_EQ(y[3], 60.0f);
}

TEST(CsrMatrixTest, TransposeEntries) {
  auto t = SmallMatrix()->Transpose();
  EXPECT_EQ(t->rows(), 3);
  EXPECT_EQ(t->cols(), 2);
  EXPECT_FLOAT_EQ(t->At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(t->At(2, 0), 2.0f);
  EXPECT_FLOAT_EQ(t->At(1, 1), 3.0f);
}

TEST(CsrMatrixTest, TransposeTwiceIsIdentityOp) {
  auto m = SmallMatrix();
  auto tt = m->Transpose()->Transpose();
  for (int64_t r = 0; r < 2; ++r) {
    for (int64_t c = 0; c < 3; ++c) {
      EXPECT_FLOAT_EQ(tt->At(r, c), m->At(r, c));
    }
  }
}

TEST(CsrMatrixTest, AddWithCoefficients) {
  auto a = CsrMatrix::FromTriplets(2, 2, {{0, 0, 1.0f}, {1, 1, 2.0f}});
  auto b = CsrMatrix::FromTriplets(2, 2, {{0, 0, 3.0f}, {0, 1, 4.0f}});
  auto c = a->Add(*b, 2.0f, -1.0f);  // 2a - b
  EXPECT_FLOAT_EQ(c->At(0, 0), -1.0f);
  EXPECT_FLOAT_EQ(c->At(0, 1), -4.0f);
  EXPECT_FLOAT_EQ(c->At(1, 1), 4.0f);
}

TEST(CsrMatrixTest, Identity) {
  auto eye = CsrMatrix::Identity(3);
  EXPECT_EQ(eye->nnz(), 3);
  const float x[3] = {5, 6, 7};
  float y[3];
  eye->Multiply(x, 1, y);
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  EXPECT_FLOAT_EQ(y[1], 6.0f);
  EXPECT_FLOAT_EQ(y[2], 7.0f);
}

TEST(CsrMatrixTest, RowSums) {
  auto sums = SmallMatrix()->RowSums();
  ASSERT_EQ(sums.size(), 2u);
  EXPECT_FLOAT_EQ(sums[0], 3.0f);
  EXPECT_FLOAT_EQ(sums[1], 3.0f);
}

TEST(CsrMatrixTest, SymmetryCheck) {
  auto sym = CsrMatrix::FromTriplets(
      2, 2, {{0, 1, 2.0f}, {1, 0, 2.0f}, {0, 0, 1.0f}});
  EXPECT_TRUE(sym->IsSymmetric());
  auto asym = CsrMatrix::FromTriplets(2, 2, {{0, 1, 2.0f}});
  EXPECT_FALSE(asym->IsSymmetric());
  auto rect = CsrMatrix::FromTriplets(2, 3, {{0, 1, 2.0f}});
  EXPECT_FALSE(rect->IsSymmetric());
}

}  // namespace
}  // namespace desalign::tensor
