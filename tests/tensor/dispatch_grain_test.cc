// SpanGrain regression tests: elementwise span kernels must not split
// work into chunks carrying fewer than kMinSpanOpsPerChunk scalar-op
// equivalents (the mul/AVX2 0.51x-at-2-threads fix), while the forced
// test grain and bit-exactness guarantees stay intact.

#include <algorithm>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "tensor/kernels/dispatch.h"
#include "tensor/kernels/elementwise.h"

namespace desalign::tensor::kernels {
namespace {

TEST(SpanGrainTest, ForcedTestGrainStillWins) {
  SetForcedGrainForTesting(3);
  EXPECT_EQ(SpanGrain(1), 3);
  EXPECT_EQ(SpanGrain(1000), 3);
  SetForcedGrainForTesting(0);
}

TEST(SpanGrainTest, CheapOpsGetAtLeastTheMinimumChunk) {
  // cost 1 (add/mul-style spans): each chunk must carry the full minimum.
  EXPECT_GE(SpanGrain(1), kMinSpanOpsPerChunk);
  // A 64k-element mul therefore runs single-chunk at any thread count —
  // exactly the case that regressed to 0.51x with two threads.
  EXPECT_GE(SpanGrain(1), int64_t{64} * 1024);
}

TEST(SpanGrainTest, ExpensiveOpsFallBackToKernelGrain) {
  // Once cost_per_item is high enough that KernelGrain's own chunks carry
  // kMinSpanOpsPerChunk, SpanGrain must not inflate them further.
  const int64_t cost = 24;
  const int64_t expected = std::max(common::ThreadPool::GrainForCost(cost),
                                    std::max<int64_t>(1, kMinSpanOpsPerChunk / cost));
  EXPECT_EQ(SpanGrain(cost), expected);
  // Very expensive items: the min-chunk floor becomes irrelevant.
  EXPECT_EQ(SpanGrain(kMinSpanOpsPerChunk),
            std::max<int64_t>(
                common::ThreadPool::GrainForCost(kMinSpanOpsPerChunk), 1));
}

TEST(SpanGrainTest, SmallMulStaysBitExactAcrossThreadCounts) {
  // The grain change is a partitioning knob only: a sub-threshold span must
  // produce identical bytes whether the pool has 1 or 4 workers.
  const int64_t n = 64 * 1024;
  common::Rng rng(7);
  std::vector<float> a(static_cast<size_t>(n)), b(static_cast<size_t>(n));
  for (auto& v : a) v = rng.UniformF(-2.0f, 2.0f);
  for (auto& v : b) v = rng.UniformF(-2.0f, 2.0f);

  std::vector<float> expected(static_cast<size_t>(n));
  common::ThreadPool::SetGlobalThreadCount(1);
  Mul(a.data(), b.data(), expected.data(), n);

  std::vector<float> got(static_cast<size_t>(n));
  common::ThreadPool::SetGlobalThreadCount(4);
  Mul(a.data(), b.data(), got.data(), n);
  common::ThreadPool::SetGlobalThreadCount(0);

  EXPECT_TRUE(std::memcmp(got.data(), expected.data(),
                          got.size() * sizeof(float)) == 0);
}

}  // namespace
}  // namespace desalign::tensor::kernels
