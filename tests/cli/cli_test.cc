#include "cli/cli.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace desalign::cli {
namespace {

int RunTool(std::initializer_list<const char*> args, std::string* output) {
  std::ostringstream os;
  std::vector<std::string> v;
  for (const char* a : args) v.emplace_back(a);
  const int code = RunCli(v, os);
  *output = os.str();
  return code;
}

TEST(CliTest, NoArgsPrintsUsage) {
  std::string out;
  EXPECT_EQ(RunTool({}, &out), 2);
  EXPECT_NE(out.find("usage: desalign"), std::string::npos);
}

TEST(CliTest, HelpCommandSucceeds) {
  std::string out;
  EXPECT_EQ(RunTool({"help"}, &out), 0);
  EXPECT_NE(out.find("sweep"), std::string::npos);
}

TEST(CliTest, UnknownCommandFails) {
  std::string out;
  EXPECT_EQ(RunTool({"frobnicate"}, &out), 2);
}

TEST(CliTest, StatsOnPreset) {
  std::string out;
  EXPECT_EQ(RunTool({"stats", "--preset=FBYG15K", "--entities=80"}, &out), 0);
  EXPECT_NE(out.find("FBYG15K-src"), std::string::npos);
  EXPECT_NE(out.find("R_seed"), std::string::npos);
}

TEST(CliTest, StatsUnknownPresetFails) {
  std::string out;
  EXPECT_EQ(RunTool({"stats", "--preset=NOPE"}, &out), 1);
}

TEST(CliTest, GenerateRequiresOut) {
  std::string out;
  EXPECT_EQ(RunTool({"generate", "--preset=FBDB15K"}, &out), 1);
}

TEST(CliTest, GenerateThenStatsRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("desalign_cli_test_" + std::to_string(::getpid()));
  std::string out;
  EXPECT_EQ(RunTool({"generate", "--preset=FBDB15K", "--entities=80",
                 "--out", dir.c_str()},
                &out),
            0);
  EXPECT_NE(out.find("wrote FBDB15K"), std::string::npos);
  std::string stats_out;
  std::string data_flag = "--data=" + dir.string();
  EXPECT_EQ(RunTool({"stats", data_flag.c_str()}, &stats_out), 0);
  EXPECT_NE(stats_out.find("FBDB15K-src"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(CliTest, RunTrainsTinyModel) {
  std::string out;
  EXPECT_EQ(RunTool({"run", "--preset=FBDB15K", "--entities=80", "--epochs=5",
                 "--dim=8", "--method=EVA"},
                &out),
            0);
  EXPECT_NE(out.find("EVA"), std::string::npos);
  EXPECT_NE(out.find("H@1"), std::string::npos);
}

TEST(CliTest, RunUnknownMethodFails) {
  std::string out;
  EXPECT_EQ(RunTool({"run", "--preset=FBDB15K", "--method=NotAModel"}, &out), 1);
}

TEST(CliTest, SweepProducesOneRowPerMethod) {
  std::string out;
  EXPECT_EQ(RunTool({"sweep", "--preset=FBDB15K", "--entities=80", "--epochs=5",
                 "--dim=8", "--variable=image_ratio", "--values=0.2,0.8",
                 "--methods=EVA,DESAlign"},
                &out),
            0);
  EXPECT_NE(out.find("EVA"), std::string::npos);
  EXPECT_NE(out.find("DESAlign"), std::string::npos);
  EXPECT_NE(out.find("0.20"), std::string::npos);
  EXPECT_NE(out.find("0.80"), std::string::npos);
}

TEST(CliTest, SweepRejectsBadVariable) {
  std::string out;
  EXPECT_EQ(RunTool({"sweep", "--preset=FBDB15K", "--entities=80",
                 "--variable=nonsense", "--values=0.5", "--epochs=2",
                 "--dim=8", "--methods=EVA"},
                &out),
            1);
}

TEST(CliTest, SweepRejectsDataDir) {
  std::string out;
  EXPECT_EQ(
      RunTool({"sweep", "--data=/tmp/x", "--values=0.5", "--methods=EVA"}, &out),
      1);
}


TEST(CliTest, SweepWritesCsv) {
  const auto csv = std::filesystem::temp_directory_path() /
                   ("desalign_sweep_" + std::to_string(::getpid()) + ".csv");
  std::string out;
  std::string csv_flag = "--csv=" + csv.string();
  EXPECT_EQ(RunTool({"sweep", "--preset=FBDB15K", "--entities=80",
                     "--epochs=3", "--dim=8", "--variable=text_ratio",
                     "--values=0.3,0.9", "--methods=EVA",
                     csv_flag.c_str()},
                    &out),
            0);
  EXPECT_NE(out.find("wrote 2 rows"), std::string::npos);
  std::ifstream in(csv);
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("method"), std::string::npos);
  EXPECT_NE(header.find("text_ratio"), std::string::npos);
  int data_rows = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) ++data_rows;
  }
  EXPECT_EQ(data_rows, 2);
  std::filesystem::remove(csv);
}

TEST(CliTest, RunWithCslsSucceeds) {
  std::string out;
  EXPECT_EQ(RunTool({"run", "--preset=FBDB15K", "--entities=80",
                     "--epochs=3", "--dim=8", "--method=EVA", "--csls"},
                    &out),
            0);
  EXPECT_NE(out.find("H@1"), std::string::npos);
}

TEST(CliTest, ServeBenchEndToEnd) {
  std::string out;
  EXPECT_EQ(RunTool({"serve-bench", "--preset=FBDB15K", "--entities=80",
                     "--epochs=2", "--dim=8", "--queries=60",
                     "--submitters=3", "--k=5", "--max-batch=16",
                     "--threads=2"},
                    &out),
            0);
  EXPECT_NE(out.find("p50(ms)"), std::string::npos);
  EXPECT_NE(out.find("p95(ms)"), std::string::npos);
  EXPECT_NE(out.find("qps"), std::string::npos);
  EXPECT_NE(out.find("recall@1"), std::string::npos);
  EXPECT_NE(out.find("recall@5"), std::string::npos);
}

TEST(CliTest, ServeBenchPersistsCheckpointWhenAsked) {
  const auto ckpt = std::filesystem::temp_directory_path() /
                    ("desalign_cli_serve_" + std::to_string(::getpid()) +
                     ".ckpt");
  std::string out;
  EXPECT_EQ(RunTool({"serve-bench", "--preset=FBDB15K", "--entities=60",
                     "--epochs=1", "--dim=8", "--queries=20",
                     "--submitters=1",
                     ("--checkpoint=" + ckpt.string()).c_str()},
                    &out),
            0);
  EXPECT_TRUE(std::filesystem::exists(ckpt));
  std::filesystem::remove(ckpt);
}

TEST(CliTest, ServeBenchRejectsNonFusionMethod) {
  std::string out;
  EXPECT_EQ(RunTool({"serve-bench", "--preset=FBDB15K", "--entities=60",
                     "--epochs=1", "--dim=8", "--method=TransE"},
                    &out),
            1);
}

TEST(CliTest, ServeBenchRejectsBadThreads) {
  std::string out;
  EXPECT_EQ(RunTool({"serve-bench", "--threads=-2"}, &out), 1);
}

std::string ReadAll(const std::filesystem::path& path) {
  std::ifstream in(path);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

TEST(CliTest, RunWritesMetricsReport) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("desalign_cli_metrics_" + std::to_string(::getpid()) +
                     ".json");
  std::string out;
  EXPECT_EQ(RunTool({"run", "--preset=FBDB15K", "--entities=80", "--epochs=4",
                     "--dim=8", "--method=DESAlign",
                     ("--metrics-out=" + path.string()).c_str()},
                    &out),
            0);
  EXPECT_NE(out.find("wrote metrics report"), std::string::npos);
  ASSERT_TRUE(std::filesystem::exists(path));
  const std::string json = ReadAll(path);
  std::filesystem::remove(path);
  // Training counters/series from the unified registry.
  EXPECT_NE(json.find("\"train.epochs\":4"), std::string::npos);
  EXPECT_NE(json.find("\"train.loss\""), std::string::npos);
  EXPECT_NE(json.find("\"train.epoch_ms\""), std::string::npos);
  // Detail-gated per-iteration propagation energy curve.
  EXPECT_NE(json.find("\"propagation.dirichlet_energy\":["),
            std::string::npos);
  EXPECT_NE(json.find("\"propagation.runs\""), std::string::npos);
  EXPECT_NE(json.find("\"dirichlet.energy_evals\""), std::string::npos);
  // Span tree covers the training phases.
  EXPECT_NE(json.find("\"name\":\"train\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"epoch\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"forward\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"backward\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"mmsl\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"decode\""), std::string::npos);
}

TEST(CliTest, ServeBenchWritesServeHistogramsToMetricsReport) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("desalign_cli_serve_metrics_" +
                     std::to_string(::getpid()) + ".json");
  std::string out;
  EXPECT_EQ(RunTool({"serve-bench", "--preset=FBDB15K", "--entities=60",
                     "--epochs=1", "--dim=8", "--queries=20",
                     "--submitters=1", "--method=EVA",
                     ("--metrics-out=" + path.string()).c_str()},
                    &out),
            0);
  ASSERT_TRUE(std::filesystem::exists(path));
  const std::string json = ReadAll(path);
  std::filesystem::remove(path);
  // One registry: training metrics and serve-path histograms side by side.
  EXPECT_NE(json.find("\"train.epochs\""), std::string::npos);
  EXPECT_NE(json.find("\"serve.latency_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"serve.batch_size\""), std::string::npos);
}

TEST(CliTest, TrainWritesCheckpointsAndMetricsRow) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("desalign_cli_train_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  const auto metrics = dir.string() + "_metrics.json";
  std::string out;
  EXPECT_EQ(RunTool({"train", "--preset=FBDB15K", "--entities=60",
                     "--epochs=4", "--dim=8", "--method=EVA",
                     "--checkpoint-every=2",
                     ("--checkpoint-dir=" + dir.string()).c_str(),
                     ("--metrics-out=" + metrics).c_str()},
                    &out),
            0);
  EXPECT_NE(out.find("H@1"), std::string::npos);
  EXPECT_NE(out.find("skips"), std::string::npos);
  EXPECT_NE(out.find("rollbacks"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(dir / "MANIFEST"));
  EXPECT_TRUE(std::filesystem::exists(dir / "ckpt_00000003.dckpt"));
  // The crash-safety metrics flow through the unified registry.
  const std::string json = ReadAll(metrics);
  std::filesystem::remove(metrics);
  EXPECT_NE(json.find("\"train.nonfinite_skips\""), std::string::npos);
  EXPECT_NE(json.find("\"train.rollbacks\""), std::string::npos);
  EXPECT_NE(json.find("\"checkpoint.write_ms\""), std::string::npos);

  // A second invocation with --resume finds the final-epoch checkpoint,
  // has nothing left to train, and still reports metrics cleanly.
  std::string resumed;
  EXPECT_EQ(RunTool({"train", "--preset=FBDB15K", "--entities=60",
                     "--epochs=4", "--dim=8", "--method=EVA",
                     "--checkpoint-every=2", "--resume",
                     ("--checkpoint-dir=" + dir.string()).c_str()},
                    &resumed),
            0);
  EXPECT_NE(resumed.find("H@1"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(CliTest, TrainRequiresCheckpointDir) {
  std::string out;
  EXPECT_EQ(RunTool({"train", "--preset=FBDB15K", "--entities=60",
                     "--epochs=2", "--dim=8"},
                    &out),
            1);
}

TEST(CliTest, TrainRejectsNonFusionMethod) {
  std::string out;
  EXPECT_EQ(RunTool({"train", "--preset=FBDB15K", "--entities=60",
                     "--epochs=2", "--dim=8", "--method=TransE",
                     "--checkpoint-dir=/tmp/desalign_cli_train_bad"},
                    &out),
            1);
}

TEST(CliTest, TrainExportsFinalParameters) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("desalign_cli_train_out_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  const auto params = dir / "final.ckpt";
  std::string out;
  EXPECT_EQ(RunTool({"train", "--preset=FBDB15K", "--entities=60",
                     "--epochs=2", "--dim=8", "--method=EVA",
                     ("--checkpoint-dir=" + (dir / "ckpts").string()).c_str(),
                     ("--out=" + params.string()).c_str()},
                    &out),
            0);
  EXPECT_NE(out.find("wrote final parameters"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(params));
  std::filesystem::remove_all(dir);
}

TEST(CliTest, MetricsOutSupportsCsv) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("desalign_cli_metrics_" + std::to_string(::getpid()) +
                     ".csv");
  std::string out;
  EXPECT_EQ(RunTool({"stats", "--preset=FBDB15K", "--entities=60",
                     ("--metrics-out=" + path.string()).c_str()},
                    &out),
            0);
  ASSERT_TRUE(std::filesystem::exists(path));
  const std::string csv = ReadAll(path);
  std::filesystem::remove(path);
  EXPECT_EQ(csv.rfind("kind,name,field,value", 0), 0u);
}

TEST(CliTest, MetricsOutRejectsUnknownExtension) {
  std::string out;
  EXPECT_EQ(RunTool({"stats", "--preset=FBDB15K", "--entities=60",
                     "--metrics-out=/tmp/desalign_metrics.txt"},
                    &out),
            1);
}

TEST(CliTest, TuneWritesFindDbAndPrintRoundTrips) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("desalign_cli_tune_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string cache = (dir / "find_db.bin").string();
  const std::string report = (dir / "tune.json").string();

  std::string out;
  EXPECT_EQ(RunTool({"tune", "--sizes=8,16", "--repeats=1",
                     ("--cache=" + cache).c_str(),
                     ("--report=" + report).c_str()},
                    &out),
            0);
  // One line per (op, size): 3 ops x 2 sizes, each naming a winner.
  EXPECT_NE(out.find("matmul_fwd 8x8x8: winner"), std::string::npos);
  EXPECT_NE(out.find("matmul_grad_b 16x16x16: winner"), std::string::npos);
  EXPECT_NE(out.find("runtime dispatch now replays"), std::string::npos);
  ASSERT_TRUE(std::filesystem::exists(cache));
  ASSERT_TRUE(std::filesystem::exists(report));
  const std::string json = ReadAll(report);
  EXPECT_NE(json.find("\"schema\":\"desalign.tune.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"winner\""), std::string::npos);

  // --print replays the persisted cache parseably: 6 records, each carrying
  // the winning solver id and both timings.
  std::string printed;
  EXPECT_EQ(
      RunTool({"tune", "--print", ("--cache=" + cache).c_str()}, &printed),
      0);
  EXPECT_NE(printed.find("version=1 records=6"), std::string::npos);
  EXPECT_NE(printed.find("record op=matmul_fwd"), std::string::npos);
  EXPECT_NE(printed.find("best_ns_per_elem="), std::string::npos);

  std::filesystem::remove_all(dir);
}

TEST(CliTest, TuneRejectsBadSizes) {
  std::string out;
  EXPECT_EQ(RunTool({"tune", "--sizes=8,-4"}, &out), 1);
  EXPECT_EQ(RunTool({"tune", "--sizes=", "--repeats=1"}, &out), 1);
  EXPECT_EQ(RunTool({"tune", "--sizes=8", "--repeats=0"}, &out), 1);
}

TEST(CliTest, TunePrintOnMissingCacheFails) {
  std::string out;
  EXPECT_EQ(RunTool({"tune", "--print",
                     "--cache=/nonexistent/desalign_find_db.bin"},
                    &out),
            1);
}

}  // namespace
}  // namespace desalign::cli
