// Property tests for the paper's theoretical apparatus: Definition 3
// (Dirichlet energy), Proposition 1 (convexity bound), Corollary 1
// (interpolation quality bounds), Proposition 2 (singular-value energy
// bounds), and the spectral range of the normalized Laplacian.

#include "graph/dirichlet.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/graph.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace desalign::graph {
namespace {

using tensor::Tensor;
using tensor::TensorPtr;

Graph RandomGraph(int64_t n, int64_t num_edges, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<std::pair<int64_t, int64_t>> edges;
  for (int64_t e = 0; e < num_edges; ++e) {
    int64_t u = rng.UniformInt(n);
    int64_t v = rng.UniformInt(n);
    if (u == v) v = (v + 1) % n;
    edges.emplace_back(u, v);
  }
  // Ensure connectivity with a path backbone.
  for (int64_t i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return Graph(n, std::move(edges));
}

TensorPtr RandomFeatures(int64_t n, int64_t d, uint64_t seed) {
  common::Rng rng(seed);
  auto x = Tensor::Create(n, d);
  tensor::FillNormal(*x, rng);
  return x;
}

TEST(DirichletTest, EnergyIsZeroForLaplacianNullspace) {
  // On a connected graph the null space of Δ = I − Ã is spanned by
  // D^{1/2}·1: features proportional to sqrt(deg+1) have zero energy.
  Graph g = RandomGraph(12, 20, 1);
  auto norm = g.NormalizedAdjacency();
  auto deg = g.Degrees();
  auto x = Tensor::Create(12, 3);
  for (int64_t i = 0; i < 12; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      x->At(i, j) = std::sqrt(static_cast<float>(deg[i] + 1)) *
                    static_cast<float>(j + 1);
    }
  }
  EXPECT_NEAR(DirichletEnergy(norm, x), 0.0, 1e-3);
}

TEST(DirichletTest, EnergyIsNonNegative) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Graph g = RandomGraph(15, 30, seed);
    auto norm = g.NormalizedAdjacency();
    auto x = RandomFeatures(15, 4, seed + 100);
    EXPECT_GE(DirichletEnergy(norm, x), -1e-4);
  }
}

TEST(DirichletTest, EnergyMatchesExplicitTraceFormula) {
  Graph g = RandomGraph(10, 18, 3);
  auto norm = g.NormalizedAdjacency();
  auto lap = g.Laplacian();
  auto x = RandomFeatures(10, 3, 5);
  // tr(XᵀΔX) computed densely.
  double expected = 0.0;
  for (int64_t i = 0; i < 10; ++i) {
    for (int64_t j = 0; j < 10; ++j) {
      const double lv = lap->At(i, j);
      if (lv == 0.0) continue;
      for (int64_t c = 0; c < 3; ++c) {
        expected += x->At(i, c) * lv * x->At(j, c);
      }
    }
  }
  EXPECT_NEAR(DirichletEnergy(norm, x), expected, 1e-3);
}

TEST(DirichletTest, EnergyNodeMatchesPlainEnergyAndDifferentiates) {
  Graph g = RandomGraph(8, 14, 7);
  auto norm = g.NormalizedAdjacency();
  common::Rng rng(9);
  auto x = Tensor::Create(8, 3, /*requires_grad=*/true);
  tensor::FillNormal(*x, rng);
  auto node = DirichletEnergyNode(norm, x);
  EXPECT_NEAR(node->ScalarValue(), DirichletEnergy(norm, x), 1e-3);
  node->Backward();
  // ∇E = 2ΔX; spot-check a few entries.
  auto lap = g.Laplacian();
  for (int64_t i = 0; i < 8; ++i) {
    double expected = 0.0;
    for (int64_t j = 0; j < 8; ++j) {
      expected += 2.0 * lap->At(i, j) * x->At(j, 0);
    }
    EXPECT_NEAR(x->grad()[i * 3 + 0], expected, 1e-3);
  }
}

TEST(DirichletTest, LaplacianEigenvaluesWithinZeroTwo) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Graph g = RandomGraph(20, 40, seed);
    const double lambda = LargestEigenvalue(g.Laplacian());
    EXPECT_GE(lambda, 0.0);
    EXPECT_LT(lambda, 2.0);  // [23] Chung: λ_max ∈ [0, 2)
  }
}

TEST(DirichletTest, LargestEigenvalueOfIdentityIsOne) {
  auto eye = tensor::CsrMatrix::Identity(6);
  EXPECT_NEAR(LargestEigenvalue(eye), 1.0, 1e-6);
}

// Proposition 1: E(X̂) − E(X) ≥ 2⟨ΔX, X̂−X⟩ for arbitrary perturbations.
class Proposition1Test : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Proposition1Test, ConvexityLowerBoundHolds) {
  const uint64_t seed = GetParam();
  Graph g = RandomGraph(12, 25, seed);
  auto norm = g.NormalizedAdjacency();
  auto x = RandomFeatures(12, 4, seed * 13 + 1);
  auto x_hat = RandomFeatures(12, 4, seed * 13 + 2);
  const double lhs = DirichletEnergy(norm, x_hat) - DirichletEnergy(norm, x);
  // 2⟨ΔX, X̂−X⟩ with Δ = I − Ã.
  const int64_t n = 12;
  const int64_t d = 4;
  std::vector<float> ax(n * d);
  norm->Multiply(x->data().data(), d, ax.data());
  double rhs = 0.0;
  for (int64_t i = 0; i < n * d; ++i) {
    const double dx = x->data()[i] - ax[i];  // (ΔX)_i
    rhs += 2.0 * dx * (x_hat->data()[i] - x->data()[i]);
  }
  EXPECT_GE(lhs, rhs - 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Proposition1Test,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Corollary 1: ||X̂−X||₂ is bracketed by the energy gap over 2λ_max·M and
// 2λ_max·m. We verify the computed bracket is ordered and contains
// plausible magnitudes.
TEST(DirichletTest, Corollary1BoundsAreOrdered) {
  Graph g = RandomGraph(12, 25, 11);
  auto norm = g.NormalizedAdjacency();
  auto x = RandomFeatures(12, 4, 21);
  auto x_hat = RandomFeatures(12, 4, 22);
  const double e_x = DirichletEnergy(norm, x);
  const double e_hat = DirichletEnergy(norm, x_hat);
  const double lambda = LargestEigenvalue(g.Laplacian());
  const double norm_x = x->FrobeniusNorm();
  const double norm_hat = x_hat->FrobeniusNorm();
  const double big = std::max(norm_x, norm_hat);
  const double small = std::min(norm_x, norm_hat);
  auto bounds = InterpolationQualityBounds(e_hat, e_x, lambda, small, big);
  EXPECT_LE(bounds.lower, bounds.upper);
  EXPECT_GE(bounds.lower, 0.0);
  // The Lipschitz lower bound must not exceed the true difference norm.
  auto diff = tensor::Sub(x_hat, x);
  EXPECT_LE(bounds.lower, diff->FrobeniusNorm() + 1e-3);
}

// Proposition 2: p_min·E(X) ≤ E(XW) ≤ p_max·E(X) with p the squared
// extreme singular values of W.
class Proposition2Test : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Proposition2Test, LayerEnergyBoundsHold) {
  const uint64_t seed = GetParam();
  Graph g = RandomGraph(14, 30, seed);
  auto norm = g.NormalizedAdjacency();
  auto x = RandomFeatures(14, 5, seed * 31 + 1);
  common::Rng rng(seed * 31 + 2);
  auto w = Tensor::Create(5, 5);
  tensor::GlorotUniform(*w, rng);
  const auto sv = EstimateSingularValueBounds(w);
  EXPECT_GE(sv.p_max, sv.p_min);
  const double e_x = DirichletEnergy(norm, x);
  const double e_xw = DirichletEnergy(norm, tensor::MatMul(x, w));
  EXPECT_LE(e_xw, sv.p_max * e_x * (1.0 + 1e-3) + 1e-4);
  EXPECT_GE(e_xw, sv.p_min * e_x * (1.0 - 1e-3) - 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Proposition2Test,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(DirichletTest, SingularValueBoundsOnKnownMatrix) {
  // diag(3, 1): singular values 3 and 1, squares 9 and 1.
  auto w = Tensor::FromData(2, 2, {3, 0, 0, 1});
  auto sv = EstimateSingularValueBounds(w);
  EXPECT_NEAR(sv.p_max, 9.0, 1e-3);
  EXPECT_NEAR(sv.p_min, 1.0, 1e-3);
}

TEST(DirichletTest, NearSingularWeightCollapsesEnergy) {
  // The over-smoothing mechanism of Proposition 2: a weight matrix with a
  // tiny smallest singular value can drive the layer energy toward zero.
  Graph g = RandomGraph(10, 18, 3);
  auto norm = g.NormalizedAdjacency();
  auto x = RandomFeatures(10, 3, 4);
  auto w = Tensor::FromData(3, 3, {1e-3f, 0, 0, 0, 1e-3f, 0, 0, 0, 1e-3f});
  const double e = DirichletEnergy(norm, tensor::MatMul(x, w));
  EXPECT_LT(e, 1e-4 * DirichletEnergy(norm, x));
}

}  // namespace
}  // namespace desalign::graph
