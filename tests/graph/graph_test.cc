#include "graph/graph.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/dirichlet.h"

namespace desalign::graph {
namespace {

Graph PathGraph(int64_t n) {
  std::vector<std::pair<int64_t, int64_t>> edges;
  for (int64_t i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return Graph(n, std::move(edges));
}

TEST(GraphTest, DeduplicatesAndDropsSelfLoops) {
  Graph g(3, {{0, 1}, {1, 0}, {0, 1}, {2, 2}});
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.num_nodes(), 3);
}

TEST(GraphTest, AdjacencyIsSymmetricBinary) {
  Graph g(4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}});
  auto a = g.Adjacency();
  EXPECT_TRUE(a->IsSymmetric());
  EXPECT_FLOAT_EQ(a->At(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(a->At(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(a->At(0, 2), 0.0f);
  EXPECT_EQ(a->nnz(), 8);
}

TEST(GraphTest, DegreesMatchEdgeList) {
  Graph g(4, {{0, 1}, {1, 2}, {1, 3}});
  auto deg = g.Degrees();
  EXPECT_EQ(deg[0], 1);
  EXPECT_EQ(deg[1], 3);
  EXPECT_EQ(deg[2], 1);
  EXPECT_EQ(deg[3], 1);
}

TEST(GraphTest, NormalizedAdjacencySymmetricWithUnitSpectralRadius) {
  common::Rng rng(5);
  std::vector<std::pair<int64_t, int64_t>> edges;
  for (int i = 0; i < 60; ++i) {
    edges.emplace_back(rng.UniformInt(20), rng.UniformInt(20));
  }
  Graph g(20, std::move(edges));
  auto norm = g.NormalizedAdjacency();
  EXPECT_TRUE(norm->IsSymmetric(1e-5f));
  // Row sums can exceed 1 on irregular graphs, but the spectral radius of
  // D^-1/2(A+I)D^-1/2 is exactly 1 (eigenvector D^{1/2}·1).
  EXPECT_NEAR(LargestEigenvalue(norm), 1.0, 1e-4);
  for (float s : norm->RowSums()) {
    EXPECT_GT(s, 0.0f);
  }
}

TEST(GraphTest, NormalizedAdjacencyRegularGraphRowSumsAreOne) {
  // On a cycle every node has degree 2; with self-loops, D^-1/2(A+I)D^-1/2
  // rows sum to exactly 1.
  std::vector<std::pair<int64_t, int64_t>> edges;
  const int64_t n = 8;
  for (int64_t i = 0; i < n; ++i) edges.emplace_back(i, (i + 1) % n);
  Graph g(n, std::move(edges));
  for (float s : g.NormalizedAdjacency()->RowSums()) {
    EXPECT_NEAR(s, 1.0f, 1e-5);
  }
}

TEST(GraphTest, IsolatedNodeGetsIdentityRow) {
  Graph g(3, {{0, 1}});  // node 2 isolated
  auto norm = g.NormalizedAdjacency();
  EXPECT_FLOAT_EQ(norm->At(2, 2), 1.0f);
  EXPECT_FLOAT_EQ(norm->At(2, 0), 0.0f);
}

TEST(GraphTest, LaplacianIsIdentityMinusNormalizedAdjacency) {
  Graph g = PathGraph(5);
  auto lap = g.Laplacian();
  auto norm = g.NormalizedAdjacency();
  for (int64_t i = 0; i < 5; ++i) {
    for (int64_t j = 0; j < 5; ++j) {
      const float expected = (i == j ? 1.0f : 0.0f) - norm->At(i, j);
      EXPECT_NEAR(lap->At(i, j), expected, 1e-6);
    }
  }
}

TEST(GraphTest, MessagePassingEdgesBothDirectionsPlusSelfLoops) {
  Graph g(3, {{0, 1}, {1, 2}});
  auto mp = g.MessagePassingEdges(true);
  EXPECT_EQ(mp.src.size(), 2u * 2u + 3u);
  // Every node appears as its own source/destination once (self-loop).
  int self_loops = 0;
  for (size_t i = 0; i < mp.src.size(); ++i) {
    if (mp.src[i] == mp.dst[i]) ++self_loops;
  }
  EXPECT_EQ(self_loops, 3);
  auto mp_no_self = g.MessagePassingEdges(false);
  EXPECT_EQ(mp_no_self.src.size(), 4u);
}

TEST(GraphTest, DisjointUnionShiftsSecondGraph) {
  Graph a(2, {{0, 1}});
  Graph b(3, {{0, 2}});
  Graph u = Graph::DisjointUnion(a, b);
  EXPECT_EQ(u.num_nodes(), 5);
  EXPECT_EQ(u.num_edges(), 2);
  auto adj = u.Adjacency();
  EXPECT_FLOAT_EQ(adj->At(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(adj->At(2, 4), 1.0f);
  // No cross edges.
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t j = 2; j < 5; ++j) {
      EXPECT_FLOAT_EQ(adj->At(i, j), 0.0f);
    }
  }
}

}  // namespace
}  // namespace desalign::graph
