#include "graph/algorithms.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace desalign::graph {
namespace {

Graph TwoTriangles() {
  // 0-1-2 triangle, 3-4-5 triangle, node 6 isolated.
  return Graph(7, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
}

TEST(ConnectedComponentsTest, LabelsAndSizes) {
  auto labels = ConnectedComponents(TwoTriangles());
  EXPECT_EQ(labels.num_components, 3);
  EXPECT_EQ(labels.label[0], labels.label[1]);
  EXPECT_EQ(labels.label[0], labels.label[2]);
  EXPECT_EQ(labels.label[3], labels.label[5]);
  EXPECT_NE(labels.label[0], labels.label[3]);
  EXPECT_NE(labels.label[6], labels.label[0]);
  auto sizes = labels.ComponentSizes();
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<int64_t>{1, 3, 3}));
}

TEST(ConnectedComponentsTest, SingleComponent) {
  Graph path(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_TRUE(IsConnected(path));
  EXPECT_FALSE(IsConnected(TwoTriangles()));
}

TEST(BfsTest, DistancesOnPath) {
  Graph path(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  auto dist = BfsDistances(path, 0);
  EXPECT_EQ(dist, (std::vector<int64_t>{0, 1, 2, 3, 4}));
  auto from_middle = BfsDistances(path, 2);
  EXPECT_EQ(from_middle, (std::vector<int64_t>{2, 1, 0, 1, 2}));
}

TEST(BfsTest, UnreachableIsMinusOne) {
  auto dist = BfsDistances(TwoTriangles(), 0);
  EXPECT_EQ(dist[3], -1);
  EXPECT_EQ(dist[6], -1);
  EXPECT_EQ(dist[2], 1);
}

TEST(KHopTest, GrowsWithRadius) {
  Graph path(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  EXPECT_EQ(KHopNeighborhood(path, 0, 0),
            (std::vector<int64_t>{0}));
  EXPECT_EQ(KHopNeighborhood(path, 0, 2),
            (std::vector<int64_t>{0, 1, 2}));
  EXPECT_EQ(KHopNeighborhood(path, 2, 10).size(), 5u);
}

TEST(InducedSubgraphTest, KeepsInternalEdgesOnly) {
  Graph g = TwoTriangles();
  auto sub = InducedSubgraph(g, {0, 1, 3});
  EXPECT_EQ(sub.num_nodes(), 3);
  // Only 0-1 survives (2 is excluded, 3 connects to excluded 4/5).
  EXPECT_EQ(sub.num_edges(), 1);
  EXPECT_EQ(sub.edges()[0], (std::pair<int64_t, int64_t>{0, 1}));
}

TEST(GraphStatisticsTest, Summary) {
  auto s = ComputeGraphStatistics(TwoTriangles());
  EXPECT_EQ(s.num_nodes, 7);
  EXPECT_EQ(s.num_edges, 6);
  EXPECT_EQ(s.num_components, 3);
  EXPECT_EQ(s.max_degree, 2);
  EXPECT_EQ(s.isolated_nodes, 1);
  EXPECT_NEAR(s.average_degree, 12.0 / 7.0, 1e-9);
}

}  // namespace
}  // namespace desalign::graph
