// Exact spectral validation of the paper's Laplacian claims, using the
// Jacobi eigensolver: λ(Δ) ⊂ [0, 2), multiplicity of eigenvalue 0 equals
// the number of connected components, and the power-iteration estimate
// agrees with the true extreme eigenvalue.

#include "graph/spectrum.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/algorithms.h"
#include "graph/dirichlet.h"
#include "graph/graph.h"

namespace desalign::graph {
namespace {

TEST(JacobiTest, DiagonalMatrixEigenvaluesAreDiagonal) {
  auto m = tensor::CsrMatrix::FromTriplets(
      3, 3, {{0, 0, 3.0f}, {1, 1, -1.0f}, {2, 2, 2.0f}});
  auto eig = SymmetricEigenvalues(*m);
  ASSERT_EQ(eig.size(), 3u);
  EXPECT_NEAR(eig[0], -1.0, 1e-8);
  EXPECT_NEAR(eig[1], 2.0, 1e-8);
  EXPECT_NEAR(eig[2], 3.0, 1e-8);
}

TEST(JacobiTest, TwoByTwoKnownSpectrum) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  auto m = tensor::CsrMatrix::FromTriplets(
      2, 2, {{0, 0, 2.0f}, {0, 1, 1.0f}, {1, 0, 1.0f}, {1, 1, 2.0f}});
  auto eig = SymmetricEigenvalues(*m);
  EXPECT_NEAR(eig[0], 1.0, 1e-8);
  EXPECT_NEAR(eig[1], 3.0, 1e-8);
}

TEST(JacobiTest, TraceAndSumAgree) {
  common::Rng rng(4);
  std::vector<tensor::Triplet> t;
  const int64_t n = 12;
  double trace = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const float d = rng.UniformF(-2.0f, 2.0f);
    t.push_back({i, i, d});
    trace += d;
    for (int64_t j = i + 1; j < n; ++j) {
      if (!rng.Bernoulli(0.3)) continue;
      const float v = rng.UniformF(-1.0f, 1.0f);
      t.push_back({i, j, v});
      t.push_back({j, i, v});
    }
  }
  auto m = tensor::CsrMatrix::FromTriplets(n, n, std::move(t));
  auto eig = SymmetricEigenvalues(*m);
  double sum = 0.0;
  for (double v : eig) sum += v;
  EXPECT_NEAR(sum, trace, 1e-5);
}

Graph RandomGraph(int64_t n, int64_t extra, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<std::pair<int64_t, int64_t>> edges;
  for (int64_t i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  for (int64_t e = 0; e < extra; ++e) {
    edges.emplace_back(rng.UniformInt(n), rng.UniformInt(n));
  }
  return Graph(n, std::move(edges));
}

class LaplacianSpectrumTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LaplacianSpectrumTest, EigenvaluesInZeroTwo) {
  Graph g = RandomGraph(24, 40, GetParam());
  auto eig = SymmetricEigenvalues(*g.Laplacian());
  EXPECT_NEAR(eig.front(), 0.0, 1e-6);
  EXPECT_LT(eig.back(), 2.0);  // Chung: λ_max(Δ) < 2 when not bipartite-ish
  for (double v : eig) EXPECT_GE(v, -1e-6);
}

TEST_P(LaplacianSpectrumTest, PowerIterationMatchesJacobi) {
  Graph g = RandomGraph(20, 30, GetParam() + 100);
  auto lap = g.Laplacian();
  const double power = LargestEigenvalue(lap, /*iterations=*/500);
  const double exact = SymmetricEigenvalues(*lap).back();
  EXPECT_NEAR(power, exact, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LaplacianSpectrumTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(LaplacianSpectrumTest, ZeroMultiplicityEqualsComponentCount) {
  // Two triangles + isolated node: 3 components.
  Graph g(7, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  auto summary = SummarizeLaplacianSpectrum(*g.Laplacian());
  EXPECT_EQ(summary.num_near_zero,
            ConnectedComponents(g).num_components);
  EXPECT_NEAR(summary.lambda_min, 0.0, 1e-6);
  // Disconnected graph: Fiedler value is 0.
  EXPECT_NEAR(summary.lambda_2, 0.0, 1e-6);  // float32 inputs
}

TEST(LaplacianSpectrumTest, ConnectedGraphHasPositiveFiedlerValue) {
  Graph g = RandomGraph(15, 25, 9);
  ASSERT_TRUE(IsConnected(g));
  auto summary = SummarizeLaplacianSpectrum(*g.Laplacian());
  EXPECT_EQ(summary.num_near_zero, 1);
  EXPECT_GT(summary.lambda_2, 1e-4);
}

TEST(SubMatrixTest, BlockPartitionOfEquationTwo) {
  // Partition Δ into known (c) and unknown (o) blocks as in Eq. 2/19.
  Graph g = RandomGraph(10, 15, 11);
  auto lap = g.Laplacian();
  std::vector<bool> known = {true, false, true,  true, false,
                             true, true,  false, true, true};
  std::vector<bool> unknown(known.size());
  for (size_t i = 0; i < known.size(); ++i) unknown[i] = !known[i];

  auto d_oo = lap->SubMatrix(unknown, unknown);
  auto d_oc = lap->SubMatrix(unknown, known);
  EXPECT_EQ(d_oo->rows(), 3);
  EXPECT_EQ(d_oo->cols(), 3);
  EXPECT_EQ(d_oc->rows(), 3);
  EXPECT_EQ(d_oc->cols(), 7);
  // Diagonal blocks of a PSD matrix are PSD: eigenvalues >= 0. In fact
  // Δ_oo is non-singular when every unknown component touches a known node
  // ([33] Rossi et al.) — its smallest eigenvalue is strictly positive.
  auto eig = SymmetricEigenvalues(*d_oo);
  EXPECT_GT(eig.front(), 0.0);
  // Entries carry over from the full matrix.
  EXPECT_NEAR(d_oo->At(0, 0), lap->At(1, 1), 1e-6);
  EXPECT_NEAR(d_oc->At(0, 0), lap->At(1, 0), 1e-6);
}

}  // namespace
}  // namespace desalign::graph
