#include "align/fusion_model.h"

#include <gtest/gtest.h>

#include "kg/synthetic.h"

namespace desalign::align {
namespace {

kg::AlignedKgPair SmallData(uint64_t seed = 21) {
  kg::SyntheticSpec spec;
  spec.num_entities = 120;
  spec.seed = seed;
  spec.seed_ratio = 0.3;
  return kg::GenerateSyntheticPair(spec);
}

FusionModelConfig FastConfig() {
  FusionModelConfig cfg;
  cfg.dim = 16;
  cfg.epochs = 25;
  return cfg;
}

TEST(FusionModelTest, TrainsAboveChance) {
  auto data = SmallData();
  FusionAlignModel model(FastConfig());
  auto result = model.Evaluate(data);
  // Chance H@1 on 84 test pairs ~ 1.2%; require a large margin.
  EXPECT_GT(result.metrics.h_at_1, 0.15);
  EXPECT_GT(result.metrics.mrr, result.metrics.h_at_1);
  EXPECT_EQ(result.metrics.num_queries,
            static_cast<int64_t>(data.test_pairs.size()));
}

TEST(FusionModelTest, EvaStyleFusionAlsoTrains) {
  auto data = SmallData();
  auto cfg = FastConfig();
  cfg.use_cross_modal_attention = false;
  cfg.use_intra_modal_losses = false;
  FusionAlignModel model(cfg);
  auto result = model.Evaluate(data);
  EXPECT_GT(result.metrics.h_at_1, 0.05);
}

TEST(FusionModelTest, DeterministicGivenSeed) {
  auto data = SmallData();
  FusionAlignModel a(FastConfig());
  FusionAlignModel b(FastConfig());
  auto ra = a.Evaluate(data);
  auto rb = b.Evaluate(data);
  EXPECT_DOUBLE_EQ(ra.metrics.h_at_1, rb.metrics.h_at_1);
  EXPECT_DOUBLE_EQ(ra.metrics.mrr, rb.metrics.mrr);
}

TEST(FusionModelTest, DisablingModalitiesStillTrains) {
  auto data = SmallData();
  auto cfg = FastConfig();
  cfg.use_modality[static_cast<int>(kg::Modality::kVisual)] = false;
  cfg.use_modality[static_cast<int>(kg::Modality::kText)] = false;
  FusionAlignModel model(cfg);
  auto result = model.Evaluate(data);
  EXPECT_GT(result.metrics.h_at_1, 0.02);
}

TEST(FusionModelTest, MinConfidenceVariantTrains) {
  auto data = SmallData();
  auto cfg = FastConfig();
  cfg.use_min_confidence = true;
  FusionAlignModel model(cfg);
  auto result = model.Evaluate(data);
  EXPECT_GT(result.metrics.h_at_1, 0.15);
}

TEST(FusionModelTest, FitMoreImprovesOrHolds) {
  auto data = SmallData();
  auto cfg = FastConfig();
  cfg.epochs = 10;  // deliberately undertrained
  FusionAlignModel model(cfg);
  model.Fit(data);
  auto before = MetricsFromSimilarity(*model.DecodeSimilarity(data));
  model.FitMore(data, data.train_pairs, 30);
  auto after = MetricsFromSimilarity(*model.DecodeSimilarity(data));
  EXPECT_GE(after.h_at_1, before.h_at_1 - 0.02);
  EXPECT_GT(after.h_at_1, 0.1);
}

TEST(FusionModelTest, NumParametersPositiveAndConfigDependent) {
  auto data = SmallData();
  FusionAlignModel caw_model(FastConfig());
  caw_model.Fit(data);
  auto cfg = FastConfig();
  cfg.use_cross_modal_attention = false;
  FusionAlignModel eva_model(cfg);
  eva_model.Fit(data);
  EXPECT_GT(caw_model.NumParameters(), eva_model.NumParameters());
}

TEST(FusionModelTest, EnergySnapshotIsFiniteAndNonNegative) {
  auto data = SmallData();
  FusionAlignModel model(FastConfig());
  model.Fit(data);
  auto snap = model.MeasureDirichletEnergies();
  EXPECT_GE(snap.e_initial, 0.0);
  EXPECT_GE(snap.e_mid, 0.0);
  EXPECT_GE(snap.e_final, 0.0);
  EXPECT_TRUE(std::isfinite(snap.e_initial));
  EXPECT_TRUE(std::isfinite(snap.e_final));
}

TEST(FusionModelTest, EarlyStoppingTerminates) {
  auto data = SmallData();
  auto cfg = FastConfig();
  cfg.epochs = 200;
  cfg.early_stop_patience = 3;
  FusionAlignModel model(cfg);
  model.Fit(data);  // must return (early stop or full run) without hanging
  auto m = MetricsFromSimilarity(*model.DecodeSimilarity(data));
  EXPECT_GT(m.h_at_1, 0.1);
}

}  // namespace
}  // namespace desalign::align
