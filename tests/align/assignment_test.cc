#include "align/assignment.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace desalign::align {
namespace {

using tensor::Tensor;

TEST(GreedyMatchTest, PicksObviousDiagonal) {
  auto sim = Tensor::FromData(3, 3,
                              {0.9f, 0.1f, 0.1f,
                               0.1f, 0.8f, 0.1f,
                               0.1f, 0.1f, 0.7f});
  auto match = GreedyOneToOneMatch(*sim);
  EXPECT_EQ(match, (std::vector<int64_t>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(MatchingAccuracy(match), 1.0);
}

TEST(GreedyMatchTest, ResolvesConflictsByScore) {
  // Both rows prefer column 0; row 0 has the stronger claim, row 1 must
  // settle for column 1.
  auto sim = Tensor::FromData(2, 2,
                              {0.9f, 0.2f,
                               0.8f, 0.3f});
  auto match = GreedyOneToOneMatch(*sim);
  EXPECT_EQ(match, (std::vector<int64_t>{0, 1}));
}

TEST(GreedyMatchTest, RectangularLeavesRowsUnmatched) {
  auto sim = Tensor::FromData(3, 2, {0.9f, 0.1f, 0.1f, 0.8f, 0.5f, 0.5f});
  auto match = GreedyOneToOneMatch(*sim);
  int64_t unmatched = 0;
  for (int64_t m : match) {
    if (m < 0) ++unmatched;
  }
  EXPECT_EQ(unmatched, 1);
}

TEST(HungarianMatchTest, OptimalOnConflictCase) {
  // Greedy picks (0,0)=0.9 then (1,1)=0.1 => 1.0 total; optimal is
  // (0,1)+(1,0)=0.8+0.8=1.6.
  auto sim = Tensor::FromData(2, 2,
                              {0.9f, 0.8f,
                               0.8f, 0.1f});
  auto greedy = GreedyOneToOneMatch(*sim);
  auto optimal = HungarianMatch(*sim);
  EXPECT_EQ(optimal, (std::vector<int64_t>{1, 0}));
  EXPECT_GT(MatchingScore(*sim, optimal), MatchingScore(*sim, greedy));
}

TEST(HungarianMatchTest, MatchesEveryRowExactlyOnce) {
  common::Rng rng(5);
  auto sim = Tensor::Create(12, 12);
  for (auto& v : sim->data()) v = rng.UniformF(0.0f, 1.0f);
  auto match = HungarianMatch(*sim);
  std::vector<bool> used(12, false);
  for (int64_t m : match) {
    ASSERT_GE(m, 0);
    ASSERT_LT(m, 12);
    EXPECT_FALSE(used[m]);
    used[m] = true;
  }
}

class AssignmentPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AssignmentPropertyTest, HungarianDominatesGreedy) {
  common::Rng rng(GetParam());
  const int64_t n = 8 + static_cast<int64_t>(GetParam() % 5);
  auto sim = Tensor::Create(n, n);
  for (auto& v : sim->data()) v = rng.UniformF(-1.0f, 1.0f);
  auto greedy = GreedyOneToOneMatch(*sim);
  auto optimal = HungarianMatch(*sim);
  EXPECT_GE(MatchingScore(*sim, optimal),
            MatchingScore(*sim, greedy) - 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssignmentPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Note: tensor::Tensor CHECK-rejects 0-sized dimensions, so the empty-
// matrix guards inside GreedyOneToOneMatch / HungarianMatch are defensive
// and cannot be exercised through the public Tensor API; the smallest
// constructible inputs are covered here.
TEST(AssignmentEdgeCaseTest, OneByOne) {
  for (float v : {-2.5f, 0.0f, 7.0f}) {
    auto sim = Tensor::FromData(1, 1, {v});
    EXPECT_EQ(GreedyOneToOneMatch(*sim), (std::vector<int64_t>{0}));
    EXPECT_EQ(HungarianMatch(*sim), (std::vector<int64_t>{0}));
  }
}

TEST(AssignmentEdgeCaseTest, SingleRowPicksBestColumn) {
  auto sim = Tensor::FromData(1, 4, {0.1f, 0.9f, 0.3f, 0.2f});
  EXPECT_EQ(GreedyOneToOneMatch(*sim), (std::vector<int64_t>{1}));
}

TEST(MatchingAccuracyTest, CountsDiagonalHits) {
  EXPECT_DOUBLE_EQ(MatchingAccuracy({0, 1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(MatchingAccuracy({1, 0, 2, 3}), 0.5);
  EXPECT_DOUBLE_EQ(MatchingAccuracy({-1, -1}), 0.0);
  EXPECT_DOUBLE_EQ(MatchingAccuracy({}), 0.0);
}

}  // namespace
}  // namespace desalign::align
