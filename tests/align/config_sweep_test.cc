// Property sweep over the fusion-model configuration space: every
// combination of the family switches must produce a trainable,
// deterministic model that beats chance. This is the combinatorial safety
// net behind the EVA/MCLEA/MEAformer/DESAlign family and the Fig. 3
// ablation switches.

#include <tuple>

#include <gtest/gtest.h>

#include "align/fusion_model.h"
#include "align/metrics.h"
#include "kg/synthetic.h"

namespace desalign::align {
namespace {

using Combo = std::tuple<bool /*caw*/, bool /*intra*/, bool /*min_conf*/,
                         bool /*random_fill*/>;

class FusionConfigSweepTest : public ::testing::TestWithParam<Combo> {};

kg::AlignedKgPair& SweepData() {
  static kg::AlignedKgPair& data = *new kg::AlignedKgPair([] {
    kg::SyntheticSpec spec;
    spec.num_entities = 100;
    spec.seed = 77;
    spec.seed_ratio = 0.3;
    spec.image_ratio = 0.7;
    return kg::GenerateSyntheticPair(spec);
  }());
  return data;
}

FusionModelConfig ComboConfig(const Combo& combo) {
  auto [caw, intra, min_conf, random_fill] = combo;
  FusionModelConfig cfg;
  cfg.dim = 12;
  cfg.epochs = 12;
  cfg.use_cross_modal_attention = caw;
  cfg.use_intra_modal_losses = intra;
  cfg.use_min_confidence = min_conf;
  cfg.missing_policy = random_fill
                           ? MissingFeaturePolicy::kRandomFromDistribution
                           : MissingFeaturePolicy::kZeroFill;
  return cfg;
}

TEST_P(FusionConfigSweepTest, TrainsAboveChanceAndDeterministic) {
  auto cfg = ComboConfig(GetParam());
  FusionAlignModel a(cfg);
  auto ra = a.Evaluate(SweepData());
  // 70 test pairs -> chance MRR ~ 0.06; require a clear margin.
  EXPECT_GT(ra.metrics.mrr, 0.15);
  EXPECT_GT(ra.metrics.h_at_10, ra.metrics.h_at_1);

  FusionAlignModel b(cfg);
  auto rb = b.Evaluate(SweepData());
  EXPECT_DOUBLE_EQ(ra.metrics.mrr, rb.metrics.mrr);
}

INSTANTIATE_TEST_SUITE_P(
    AllSwitchCombos, FusionConfigSweepTest,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Bool(), ::testing::Bool()),
    [](const ::testing::TestParamInfo<Combo>& info) {
      std::string name;
      name += std::get<0>(info.param) ? "Caw" : "Global";
      name += std::get<1>(info.param) ? "Intra" : "NoIntra";
      name += std::get<2>(info.param) ? "MinConf" : "NoMinConf";
      name += std::get<3>(info.param) ? "RandomFill" : "ZeroFill";
      return name;
    });

// Margin-ranking task loss across both fusion modes.
class MarginLossSweepTest : public ::testing::TestWithParam<bool> {};

TEST_P(MarginLossSweepTest, TrainsAboveChance) {
  FusionModelConfig cfg;
  cfg.dim = 12;
  cfg.epochs = 15;
  cfg.task_loss = TaskLossKind::kMarginRanking;
  cfg.use_cross_modal_attention = GetParam();
  cfg.use_intra_modal_losses = false;
  FusionAlignModel model(cfg);
  auto r = model.Evaluate(SweepData());
  EXPECT_GT(r.metrics.mrr, 0.1);
}

INSTANTIATE_TEST_SUITE_P(BothFusions, MarginLossSweepTest,
                         ::testing::Bool());

}  // namespace
}  // namespace desalign::align
