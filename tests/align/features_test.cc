#include "align/features.h"

#include <cmath>

#include <gtest/gtest.h>

#include "kg/synthetic.h"

namespace desalign::align {
namespace {

kg::AlignedKgPair TestData(double image_ratio = 0.5) {
  kg::SyntheticSpec spec;
  spec.num_entities = 150;
  spec.image_ratio = image_ratio;
  spec.text_ratio = 0.7;
  spec.seed = 17;
  return kg::GenerateSyntheticPair(spec);
}

TEST(FeaturesTest, StacksSourceThenTarget) {
  auto data = TestData();
  common::Rng rng(1);
  auto f = BuildCombinedFeatures(data, MissingFeaturePolicy::kZeroFill, rng);
  EXPECT_EQ(f.num_source, 150);
  EXPECT_EQ(f.num_target, 150);
  EXPECT_EQ(f.total(), 300);
  EXPECT_EQ(f.visual->rows(), 300);
  EXPECT_EQ(f.relation->cols(),
            data.source.relation_features.dim());
  // Presence masks concatenate in order.
  for (int64_t i = 0; i < 150; ++i) {
    EXPECT_EQ(f.visual_present[i], data.source.visual_features.present[i]);
    EXPECT_EQ(f.visual_present[150 + i],
              data.target.visual_features.present[i]);
  }
}

TEST(FeaturesTest, PresentRowsAreUnitNorm) {
  auto data = TestData();
  common::Rng rng(2);
  auto f = BuildCombinedFeatures(data, MissingFeaturePolicy::kZeroFill, rng);
  for (int64_t i = 0; i < f.total(); ++i) {
    if (!f.visual_present[i]) continue;
    double norm = 0.0;
    for (int64_t j = 0; j < f.visual->cols(); ++j) {
      norm += static_cast<double>(f.visual->At(i, j)) * f.visual->At(i, j);
    }
    EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-4);
  }
}

TEST(FeaturesTest, ZeroFillLeavesMissingRowsZero) {
  auto data = TestData();
  common::Rng rng(3);
  auto f = BuildCombinedFeatures(data, MissingFeaturePolicy::kZeroFill, rng);
  for (int64_t i = 0; i < f.total(); ++i) {
    if (f.visual_present[i]) continue;
    for (int64_t j = 0; j < f.visual->cols(); ++j) {
      EXPECT_EQ(f.visual->At(i, j), 0.0f);
    }
  }
}

TEST(FeaturesTest, RandomFillMatchesPresentMoments) {
  auto data = TestData(/*image_ratio=*/0.5);
  common::Rng rng(4);
  auto f = BuildCombinedFeatures(
      data, MissingFeaturePolicy::kRandomFromDistribution, rng);
  // Compare column means of present vs filled rows.
  const int64_t c = f.visual->cols();
  double present_mean = 0.0;
  double filled_mean = 0.0;
  double filled_sq = 0.0;
  int64_t n_present = 0;
  int64_t n_filled = 0;
  for (int64_t i = 0; i < f.total(); ++i) {
    for (int64_t j = 0; j < c; ++j) {
      if (f.visual_present[i]) {
        present_mean += f.visual->At(i, j);
        ++n_present;
      } else {
        filled_mean += f.visual->At(i, j);
        filled_sq += static_cast<double>(f.visual->At(i, j)) *
                     f.visual->At(i, j);
        ++n_filled;
      }
    }
  }
  ASSERT_GT(n_filled, 0);
  present_mean /= n_present;
  filled_mean /= n_filled;
  EXPECT_NEAR(filled_mean, present_mean, 0.05);
  // Filled rows are genuinely non-zero noise.
  EXPECT_GT(filled_sq / n_filled, 1e-4);
}

TEST(FeaturesTest, AllPresentIntersectsMasks) {
  auto data = TestData();
  common::Rng rng(5);
  auto f = BuildCombinedFeatures(data, MissingFeaturePolicy::kZeroFill, rng);
  auto all = f.AllPresent();
  for (int64_t i = 0; i < f.total(); ++i) {
    EXPECT_EQ(all[i], f.relation_present[i] && f.text_present[i] &&
                          f.visual_present[i]);
  }
}

TEST(FeaturesTest, PresentForDispatch) {
  auto data = TestData();
  common::Rng rng(6);
  auto f = BuildCombinedFeatures(data, MissingFeaturePolicy::kZeroFill, rng);
  EXPECT_EQ(&f.PresentFor(kg::Modality::kText), &f.text_present);
  EXPECT_EQ(&f.PresentFor(kg::Modality::kVisual), &f.visual_present);
  EXPECT_EQ(&f.PresentFor(kg::Modality::kRelation), &f.relation_present);
}

}  // namespace
}  // namespace desalign::align
