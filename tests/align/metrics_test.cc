#include "align/metrics.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace desalign::align {
namespace {

using tensor::Tensor;

TEST(MetricsTest, PerfectDiagonalGivesAllOnes) {
  auto sim = Tensor::FromData(3, 3, {1, 0, 0, 0, 1, 0, 0, 0, 1});
  auto m = MetricsFromSimilarity(*sim);
  EXPECT_DOUBLE_EQ(m.h_at_1, 1.0);
  EXPECT_DOUBLE_EQ(m.h_at_10, 1.0);
  EXPECT_DOUBLE_EQ(m.mrr, 1.0);
  EXPECT_EQ(m.num_queries, 3);
}

TEST(MetricsTest, KnownRanksHandComputed) {
  // Row 0: truth 0.9 is the max -> rank 1.
  // Row 1: truth 0.1, both others higher -> rank 3.
  // Row 2: truth 0.5, one higher -> rank 2.
  auto sim = Tensor::FromData(3, 3,
                              {0.9f, 0.2f, 0.1f,
                               0.8f, 0.1f, 0.3f,
                               0.7f, 0.2f, 0.5f});
  auto m = MetricsFromSimilarity(*sim);
  EXPECT_NEAR(m.h_at_1, 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(m.h_at_5, 1.0, 1e-9);
  EXPECT_NEAR(m.mrr, (1.0 + 1.0 / 3.0 + 0.5) / 3.0, 1e-9);
}

TEST(MetricsTest, WorstCase) {
  // Diagonal is always the smallest.
  auto sim = Tensor::FromData(2, 2, {0.0f, 1.0f, 1.0f, 0.0f});
  auto m = MetricsFromSimilarity(*sim);
  EXPECT_DOUBLE_EQ(m.h_at_1, 0.0);
  EXPECT_DOUBLE_EQ(m.mrr, 0.5);  // rank 2 both
}

TEST(MetricsTest, HAtKMonotone) {
  common::Rng rng(3);
  auto sim = Tensor::Create(20, 20);
  for (auto& v : sim->data()) v = rng.UniformF(0.0f, 1.0f);
  auto m = MetricsFromSimilarity(*sim);
  EXPECT_LE(m.h_at_1, m.h_at_5);
  EXPECT_LE(m.h_at_5, m.h_at_10);
  EXPECT_GE(m.mrr, m.h_at_1 / 1.0 * 0.99);  // MRR >= H@1
}

TEST(CosineSimilarityTest, MatchesManual) {
  auto a = Tensor::FromData(1, 2, {1.0f, 0.0f});
  auto b = Tensor::FromData(2, 2, {1.0f, 0.0f, 0.0f, 1.0f});
  auto sim = CosineSimilarityMatrix(a, b);
  EXPECT_NEAR(sim->At(0, 0), 1.0f, 1e-5);
  EXPECT_NEAR(sim->At(0, 1), 0.0f, 1e-5);
}

TEST(CosineSimilarityTest, ScaleInvariant) {
  auto a = Tensor::FromData(1, 3, {1, 2, 3});
  auto b = Tensor::FromData(1, 3, {10, 20, 30});
  auto sim = CosineSimilarityMatrix(a, b);
  EXPECT_NEAR(sim->At(0, 0), 1.0f, 1e-5);
}

TEST(CosineSimilarityTest, BuildsNoAutogradGraph) {
  auto a = Tensor::FromData(1, 2, {1, 2}, /*requires_grad=*/true);
  auto sim = CosineSimilarityMatrix(a, a);
  EXPECT_TRUE(sim->parents().empty());
}

TEST(CslsTest, PreservesArgmaxStructureOnSymmetricScores) {
  // CSLS should not destroy an unambiguous diagonal.
  auto sim = Tensor::FromData(3, 3,
                              {0.9f, 0.1f, 0.1f,
                               0.1f, 0.9f, 0.1f,
                               0.1f, 0.1f, 0.9f});
  ApplyCsls(*sim, 1);
  auto m = MetricsFromSimilarity(*sim);
  EXPECT_DOUBLE_EQ(m.h_at_1, 1.0);
}

TEST(CslsTest, PenalizesHubColumns) {
  // Column 1 is a "hub": highly similar to every row. Its large
  // neighbourhood mean is subtracted, demoting it relative to the specific
  // match in column 0.
  auto sim = Tensor::FromData(3, 3,
                              {0.75f, 0.80f, 0.30f,
                               0.20f, 0.82f, 0.30f,
                               0.20f, 0.81f, 0.78f});
  // Row 0's best raw match is the hub column 1 (0.80 > 0.75) — wrong.
  EXPECT_GT(sim->At(0, 1), sim->At(0, 0));
  ApplyCsls(*sim, 3);
  EXPECT_GT(sim->At(0, 0), sim->At(0, 1));
}

}  // namespace
}  // namespace desalign::align
