#include "align/loss.h"

#include <cmath>

#include <gtest/gtest.h>

#include "align/metrics.h"
#include "common/rng.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "testing/grad_check.h"

namespace desalign::align {
namespace {

namespace ops = desalign::tensor;
using tensor::Tensor;
using tensor::TensorPtr;

TensorPtr RandomEmb(int64_t n, int64_t d, uint64_t seed, bool grad = false) {
  common::Rng rng(seed);
  auto t = Tensor::Create(n, d, grad);
  tensor::FillNormal(*t, rng);
  return t;
}

TEST(ContrastiveLossTest, PerfectAlignmentHasLowLoss) {
  // Higher dimension keeps random negatives nearly orthogonal, so the
  // diagonal dominates after temperature scaling.
  auto z = RandomEmb(8, 16, 1);
  auto loss_aligned = ContrastiveAlignmentLoss(z, z, 0.05f);
  auto z2 = RandomEmb(8, 16, 2);
  auto loss_random = ContrastiveAlignmentLoss(z, z2, 0.05f);
  EXPECT_LT(loss_aligned->ScalarValue(), loss_random->ScalarValue());
  EXPECT_LT(loss_aligned->ScalarValue(), 0.1f);
}

TEST(ContrastiveLossTest, RandomPairsNearLogBatch) {
  // With i.i.d. random embeddings the expected loss is ~log(B).
  auto z1 = RandomEmb(64, 8, 3);
  auto z2 = RandomEmb(64, 8, 4);
  const float loss = ContrastiveAlignmentLoss(z1, z2, 1.0f)->ScalarValue();
  EXPECT_NEAR(loss, std::log(64.0f), 0.6f);
}

TEST(ContrastiveLossTest, SymmetricInArguments) {
  auto z1 = RandomEmb(6, 4, 5);
  auto z2 = RandomEmb(6, 4, 6);
  const float a = ContrastiveAlignmentLoss(z1, z2, 0.2f)->ScalarValue();
  const float b = ContrastiveAlignmentLoss(z2, z1, 0.2f)->ScalarValue();
  EXPECT_NEAR(a, b, 1e-5);
}

TEST(ContrastiveLossTest, WeightsScaleContributions) {
  auto z1 = RandomEmb(4, 4, 7);
  auto z2 = RandomEmb(4, 4, 8);
  auto uniform = Tensor::Full(4, 1, 1.0f);
  const float unweighted =
      ContrastiveAlignmentLoss(z1, z2, 0.2f)->ScalarValue();
  const float weighted =
      ContrastiveAlignmentLoss(z1, z2, 0.2f, uniform)->ScalarValue();
  EXPECT_NEAR(unweighted, weighted, 1e-5);
  auto halved = Tensor::Full(4, 1, 0.5f);
  const float half =
      ContrastiveAlignmentLoss(z1, z2, 0.2f, halved)->ScalarValue();
  EXPECT_NEAR(half, 0.5f * unweighted, 1e-5);
}

TEST(ContrastiveLossTest, GradientsMatchFiniteDifferences) {
  auto z1 = RandomEmb(4, 3, 9, /*grad=*/true);
  auto z2 = RandomEmb(4, 3, 10, /*grad=*/true);
  desalign::testing::CheckGradients(
      {z1, z2}, [&] { return ContrastiveAlignmentLoss(z1, z2, 0.5f); });
}

TEST(ContrastiveLossTest, TrainingOnLossAlignsEmbeddings) {
  // Gradient descent on the loss should pull paired rows together in
  // cosine similarity.
  auto z1 = RandomEmb(6, 4, 11, /*grad=*/true);
  auto z2 = RandomEmb(6, 4, 12, /*grad=*/true);
  auto mean_diag_cos = [&] {
    auto sim = CosineSimilarityMatrix(z1, z2);
    float acc = 0.0f;
    for (int64_t i = 0; i < 6; ++i) acc += sim->At(i, i);
    return acc / 6.0f;
  };
  const float before = mean_diag_cos();
  for (int step = 0; step < 200; ++step) {
    auto loss = ContrastiveAlignmentLoss(z1, z2, 0.2f);
    z1->ZeroGrad();
    z2->ZeroGrad();
    loss->Backward();
    for (auto* t : {z1.get(), z2.get()}) {
      for (int64_t i = 0; i < t->size(); ++i) {
        t->data()[i] -= 0.1f * t->grad()[i];
      }
    }
  }
  EXPECT_GT(mean_diag_cos(), before + 0.3f);
}

}  // namespace
}  // namespace desalign::align
