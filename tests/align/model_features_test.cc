// Coverage for the fusion model's auxiliary features: CSLS decoding flag,
// per-epoch energy tracing, and the harness' CSLS pass-through.

#include <cmath>

#include <gtest/gtest.h>

#include "align/fusion_model.h"
#include "align/metrics.h"
#include "eval/harness.h"
#include "kg/synthetic.h"

namespace desalign::align {
namespace {

kg::AlignedKgPair SmallData() {
  kg::SyntheticSpec spec;
  spec.num_entities = 100;
  spec.seed = 91;
  spec.seed_ratio = 0.3;
  return kg::GenerateSyntheticPair(spec);
}

FusionModelConfig FastConfig() {
  FusionModelConfig cfg;
  cfg.dim = 12;
  cfg.epochs = 15;
  return cfg;
}

TEST(ModelFeaturesTest, CslsFlagChangesDecodedSimilarities) {
  auto data = SmallData();
  auto cfg = FastConfig();
  FusionAlignModel plain(cfg);
  plain.Fit(data);
  auto sim_plain = plain.DecodeSimilarity(data);

  cfg.use_csls = true;
  FusionAlignModel corrected(cfg);
  corrected.Fit(data);
  auto sim_csls = corrected.DecodeSimilarity(data);

  // Same training seed => same model; only the decode transform differs.
  double diff = 0.0;
  for (int64_t i = 0; i < sim_plain->size(); ++i) {
    diff += std::fabs(sim_plain->data()[i] - sim_csls->data()[i]);
  }
  EXPECT_GT(diff / sim_plain->size(), 1e-4);
  // CSLS must not wreck accuracy.
  auto m_plain = MetricsFromSimilarity(*sim_plain);
  auto m_csls = MetricsFromSimilarity(*sim_csls);
  EXPECT_GE(m_csls.h_at_1, m_plain.h_at_1 - 0.05);
}

TEST(ModelFeaturesTest, EnergyTraceRecordsOnePerEpoch) {
  auto data = SmallData();
  auto cfg = FastConfig();
  cfg.record_energy_trace = true;
  FusionAlignModel model(cfg);
  model.Fit(data);
  ASSERT_EQ(model.energy_trace().size(), static_cast<size_t>(cfg.epochs));
  for (const auto& snap : model.energy_trace()) {
    EXPECT_GE(snap.e_initial, 0.0);
    EXPECT_GE(snap.e_final, 0.0);
    EXPECT_TRUE(std::isfinite(snap.e_mid));
  }
}

TEST(ModelFeaturesTest, EnergyTraceOffByDefault) {
  auto data = SmallData();
  FusionAlignModel model(FastConfig());
  model.Fit(data);
  EXPECT_TRUE(model.energy_trace().empty());
}

TEST(ModelFeaturesTest, HarnessCslsParameter) {
  auto data = SmallData();
  auto& settings = eval::GlobalHarnessSettings();
  const auto saved = settings;
  settings.dim = 12;
  settings.epochs = 10;
  auto factory = eval::ProminentMethods()[0];  // EVA
  auto plain = eval::RunCell(factory, data, 3);
  auto csls = eval::RunCell(factory, data, 3, /*iterative=*/false, {},
                            /*csls=*/true);
  EXPECT_GE(csls.metrics.h_at_1, plain.metrics.h_at_1 - 0.05);
  settings = saved;
}

TEST(ModelFeaturesTest, H5BetweenH1AndH10) {
  auto data = SmallData();
  FusionAlignModel model(FastConfig());
  auto r = model.Evaluate(data);
  EXPECT_GE(r.metrics.h_at_5, r.metrics.h_at_1);
  EXPECT_LE(r.metrics.h_at_5, r.metrics.h_at_10);
  EXPECT_GT(r.metrics.h_at_5, 0.0);
}

}  // namespace
}  // namespace desalign::align
