#include "align/iterative.h"

#include <gtest/gtest.h>

#include "kg/synthetic.h"
#include "tensor/tensor.h"

namespace desalign::align {
namespace {

using tensor::Tensor;

kg::AlignedKgPair PairsOnly(int64_t n) {
  kg::AlignedKgPair data;
  for (int64_t i = 0; i < n; ++i) {
    data.test_pairs.push_back({i * 10, i * 10 + 1});
  }
  return data;
}

TEST(MutualNearestTest, ExtractsCleanDiagonal) {
  auto data = PairsOnly(3);
  auto sim = Tensor::FromData(3, 3,
                              {0.9f, 0.1f, 0.1f,
                               0.1f, 0.8f, 0.1f,
                               0.1f, 0.1f, 0.7f});
  auto pseudo = MutualNearestPairs(*sim, data, 0.5f);
  ASSERT_EQ(pseudo.size(), 3u);
  EXPECT_EQ(pseudo[0].source, 0);
  EXPECT_EQ(pseudo[0].target, 1);
  EXPECT_EQ(pseudo[2].source, 20);
  EXPECT_EQ(pseudo[2].target, 21);
}

TEST(MutualNearestTest, ThresholdFilters) {
  auto data = PairsOnly(2);
  auto sim = Tensor::FromData(2, 2, {0.9f, 0.0f, 0.0f, 0.3f});
  auto pseudo = MutualNearestPairs(*sim, data, 0.5f);
  ASSERT_EQ(pseudo.size(), 1u);
  EXPECT_EQ(pseudo[0].source, 0);
}

TEST(MutualNearestTest, NonMutualPairsAreDropped) {
  // Row 0 prefers column 1, but column 1's best row is 1 -> no pair for 0.
  auto data = PairsOnly(2);
  auto sim = Tensor::FromData(2, 2,
                              {0.2f, 0.6f,
                               0.1f, 0.9f});
  auto pseudo = MutualNearestPairs(*sim, data, 0.0f);
  ASSERT_EQ(pseudo.size(), 1u);
  EXPECT_EQ(pseudo[0].source, 10);
  EXPECT_EQ(pseudo[0].target, 11);
}

TEST(MutualNearestTest, CrossPairExtraction) {
  // Mutual nearest can pick off-diagonal (model believes i matches j).
  auto data = PairsOnly(2);
  auto sim = Tensor::FromData(2, 2,
                              {0.1f, 0.9f,
                               0.8f, 0.1f});
  auto pseudo = MutualNearestPairs(*sim, data, 0.5f);
  ASSERT_EQ(pseudo.size(), 2u);
  EXPECT_EQ(pseudo[0].source, 0);
  EXPECT_EQ(pseudo[0].target, 11);  // test pair 1's target entity
  EXPECT_EQ(pseudo[1].source, 10);
  EXPECT_EQ(pseudo[1].target, 1);
}

TEST(IterativeRefinementTest, ImprovesUndertrainedModel) {
  kg::SyntheticSpec spec;
  spec.num_entities = 120;
  spec.seed = 31;
  spec.seed_ratio = 0.15;
  auto data = kg::GenerateSyntheticPair(spec);

  FusionModelConfig cfg;
  cfg.dim = 16;
  cfg.epochs = 25;
  FusionAlignModel model(cfg);
  model.Fit(data);
  auto before = MetricsFromSimilarity(*model.DecodeSimilarity(data));

  IterativeConfig iter;
  iter.rounds = 2;
  iter.epochs_per_round = 15;
  iter.min_similarity = 0.4f;
  RunIterativeRefinement(model, data, iter);
  auto after = MetricsFromSimilarity(*model.DecodeSimilarity(data));
  EXPECT_GE(after.h_at_1, before.h_at_1 - 0.03);
  EXPECT_GT(after.h_at_1, 0.1);
}

}  // namespace
}  // namespace desalign::align
